"""Hybrid media (Figure 2): magnetic version pages, write-once data pages.

The optical pair's disks raise on any overwrite, so every test here also
proves, by construction, that the copy-on-write discipline never rewrites
a data page.
"""

import pytest

from repro.errors import CommitConflict, WriteOnceViolation
from repro.block.hybrid import OPTICAL_BASE, HybridBlockClient
from repro.core.pathname import PagePath
from repro.core.system_tree import SystemTree
from repro.testbed import build_hybrid_cluster

ROOT = PagePath.ROOT


@pytest.fixture
def hybrid():
    return build_hybrid_cluster(seed=17)


@pytest.fixture
def fs(hybrid):
    return hybrid.fs()


def _wide_file(fs, pages=4):
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(pages):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    return cap


def test_version_pages_magnetic_data_pages_optical(hybrid, fs):
    cap = _wide_file(fs)
    chain = fs.family_tree(cap)["committed"]
    for block in chain:
        assert block < OPTICAL_BASE, "version pages belong on magnetic media"
    root = fs.store.load(chain[-1], fresh=True)
    for ref in root.refs:
        assert ref.block >= OPTICAL_BASE, "data pages belong on optical media"


def test_sequential_updates_never_overwrite_optical(hybrid, fs):
    cap = _wide_file(fs)
    for n in range(5):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, PagePath.of(n % 4), b"u%d" % n)
        fs.commit(handle.version)
    assert fs.read_page(fs.current_version(cap), PagePath.of(0)) == b"u4"
    assert hybrid.optical_pair.disk_a.stats.overwrites == 0
    assert hybrid.optical_pair.disk_b.stats.overwrites == 0


def test_concurrent_merge_relocates_burned_pages(hybrid, fs):
    """A failed first commit leaves flushed optical pages; a deep merge
    that grafts into one of them must relocate it, not rewrite it."""
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    mid = fs.append_page(setup.version, ROOT, b"mid")
    left = fs.append_page(setup.version, mid, b"left")
    right = fs.append_page(setup.version, mid, b"right")
    fs.commit(setup.version)
    va = fs.create_version(cap)
    vb = fs.create_version(cap)
    fs.write_page(va.version, left, b"A")
    fs.write_page(vb.version, right, b"B")
    fs.commit(va.version)
    dead_before = fs.store.blocks.optical_dead
    fs.commit(vb.version)  # deep merge inside vb's flushed copy of `mid`
    current = fs.current_version(cap)
    assert fs.read_page(current, left) == b"A"
    assert fs.read_page(current, right) == b"B"
    assert hybrid.optical_pair.disk_a.stats.overwrites == 0
    assert fs.store.blocks.optical_dead > dead_before  # relocation happened


def test_conflicts_still_detected_on_hybrid(hybrid, fs):
    cap = _wide_file(fs)
    va = fs.create_version(cap)
    vb = fs.create_version(cap)
    fs.read_page(vb.version, PagePath.of(1))
    fs.write_page(va.version, PagePath.of(1), b"A")
    fs.write_page(vb.version, PagePath.of(2), b"B")
    fs.commit(va.version)
    with pytest.raises(CommitConflict):
        fs.commit(vb.version)


def test_superfile_update_on_hybrid(hybrid, fs):
    tree = SystemTree(fs)
    parent = fs.create_file(b"P")
    handle = fs.create_version(parent)
    sub = tree.create_subfile(handle.version, ROOT, initial_data=b"S1")
    fs.commit(handle.version)
    update = tree.begin_super_update(parent)
    hs = tree.open_subfile(update, sub)
    fs.write_page(hs.version, ROOT, b"S2")
    tree.commit_super(update)
    assert fs.read_page(fs.current_version(sub), ROOT) == b"S2"
    assert hybrid.optical_pair.disk_a.stats.overwrites == 0


def test_gc_on_hybrid_is_sweep_only(hybrid, fs):
    cap = _wide_file(fs)
    handle = fs.create_version(cap)
    for i in range(4):
        fs.read_page(handle.version, PagePath.of(i))  # read copies
    fs.commit(handle.version)
    from repro.core.gc import GarbageCollector

    stats = GarbageCollector(fs).collect(reshare=True)  # forced off inside
    assert stats.reshared == 0
    assert fs.read_page(fs.current_version(cap), PagePath.of(0)) == b"c0"
    assert hybrid.optical_pair.disk_a.stats.overwrites == 0


def test_freed_optical_blocks_are_lost_not_reused(hybrid, fs):
    cap = _wide_file(fs)
    before = fs.store.blocks.optical_dead
    handle = fs.create_version(cap)
    fs.write_page(handle.version, PagePath.of(0), b"junk")
    fs.abort(handle.version)  # frees the private optical page
    assert fs.store.blocks.optical_dead > before
    # And the old committed data still reads fine.
    assert fs.read_page(fs.current_version(cap), PagePath.of(0)) == b"c0"


def test_corrupted_optical_block_served_from_companion(hybrid, fs):
    cap = _wide_file(fs)
    chain = fs.family_tree(cap)["committed"]
    root = fs.store.load(chain[-1], fresh=True)
    victim = root.refs[0].block - OPTICAL_BASE
    hybrid.optical_pair.disk_a.corrupt(victim)
    fs.store.cache.clear()
    # Read succeeds via the companion; the local copy stays corrupt
    # (write-once media cannot be repaired in place) so a second read
    # takes the companion path again.
    assert fs.read_page(fs.current_version(cap), PagePath.of(0)) == b"c0"
    fs.store.cache.clear()
    assert fs.read_page(fs.current_version(cap), PagePath.of(0)) == b"c0"


def test_hybrid_block_client_routing():
    from repro.sim.network import Network
    from repro.block.stable import StableClient, StablePair

    net = Network()
    StablePair(net, 0xA01, capacity=64, name_a="m1", name_b="m2")
    StablePair(net, 0xA02, capacity=64, name_a="o1", name_b="o2", write_once=True)
    client = HybridBlockClient(
        StableClient(net, "fs", 0xA01, 1), StableClient(net, "fs", 0xA02, 1)
    )
    magnetic = client.allocate_magnetic()
    optical = client.allocate_optical()
    assert magnetic < OPTICAL_BASE <= optical
    client.write(magnetic, b"mag")
    client.write(optical, b"opt")
    assert client.read(magnetic) == b"mag"
    assert client.read(optical) == b"opt"
    assert not client.is_optical(magnetic)
    assert client.is_optical(optical)
    # Magnetic rewrites fine; optical refuses.
    client.write(magnetic, b"mag2")
    with pytest.raises(WriteOnceViolation):
        client.write(optical, b"opt2")
    # Recovery lists both, with offsets applied.
    assert set(client.recover()) == {magnetic, optical}
    # Freeing optical loses the space.
    client.free(optical)
    assert client.optical_dead == 1


def test_fsck_passes_on_hybrid(hybrid, fs):
    from repro.tools.check import check_cluster

    cap = _wide_file(fs)
    handle = fs.create_version(cap)
    fs.write_page(handle.version, PagePath.of(1), b"x")
    fs.commit(handle.version)
    report = check_cluster(hybrid)
    assert report.ok, report.errors
