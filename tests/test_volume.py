"""The volume app: atomic cross-directory rename on super-files."""

import pytest

from repro.apps.directory import DirectoryEntryExists, NoSuchEntry
from repro.apps.volume import Volume
from repro.core.pathname import PagePath
from repro.errors import FileLocked

ROOT = PagePath.ROOT


@pytest.fixture
def volume(cluster):
    vol = Volume(cluster.fs())
    volume_cap, root_dir = vol.create()
    return vol, volume_cap, root_dir


def _file(cluster, data=b"payload"):
    return cluster.fs().create_file(data)


def test_bind_lookup_unlink(cluster, volume):
    vol, volume_cap, root = volume
    target = _file(cluster)
    vol.bind(root, "readme", target)
    assert vol.lookup(root, "readme") == target
    assert vol.list(root) == ["readme"]
    vol.unlink(root, "readme")
    with pytest.raises(NoSuchEntry):
        vol.lookup(root, "readme")


def test_nested_directories(cluster, volume):
    vol, volume_cap, root = volume
    src = vol.add_directory(volume_cap, "src", root)
    deep = vol.add_directory(volume_cap, "deep", src)
    target = _file(cluster)
    vol.bind(deep, "main.py", target)
    assert vol.lookup(vol.lookup(vol.lookup(root, "src"), "deep"), "main.py") == target


def test_rename_within_directory(cluster, volume):
    vol, volume_cap, root = volume
    target = _file(cluster)
    vol.bind(root, "old", target)
    vol.rename(volume_cap, root, "old", root, "new")
    assert vol.lookup(root, "new") == target
    with pytest.raises(NoSuchEntry):
        vol.lookup(root, "old")


def test_rename_across_directories_atomic(cluster, volume):
    vol, volume_cap, root = volume
    src = vol.add_directory(volume_cap, "src", root)
    dst = vol.add_directory(volume_cap, "dst", root)
    target = _file(cluster)
    vol.bind(src, "wandering", target)
    vol.rename(volume_cap, src, "wandering", dst)
    assert vol.lookup(dst, "wandering") == target
    with pytest.raises(NoSuchEntry):
        vol.lookup(src, "wandering")


def test_rename_missing_source_aborts_cleanly(cluster, volume):
    vol, volume_cap, root = volume
    src = vol.add_directory(volume_cap, "src", root)
    dst = vol.add_directory(volume_cap, "dst", root)
    with pytest.raises(NoSuchEntry):
        vol.rename(volume_cap, src, "ghost", dst)
    # Locks were released: the directories update freely again.
    vol.bind(src, "x", _file(cluster))
    vol.bind(dst, "y", _file(cluster))


def test_rename_collision_aborts_cleanly(cluster, volume):
    vol, volume_cap, root = volume
    src = vol.add_directory(volume_cap, "src", root)
    dst = vol.add_directory(volume_cap, "dst", root)
    vol.bind(src, "name", _file(cluster))
    vol.bind(dst, "name", _file(cluster))
    with pytest.raises(DirectoryEntryExists):
        vol.rename(volume_cap, src, "name", dst)
    assert vol.list(src) == ["name"]
    assert vol.list(dst) == ["name"]


def test_exchange_across_directories(cluster, volume):
    vol, volume_cap, root = volume
    a = vol.add_directory(volume_cap, "a", root)
    b = vol.add_directory(volume_cap, "b", root)
    file1, file2 = _file(cluster, b"1"), _file(cluster, b"2")
    vol.bind(a, "x", file1)
    vol.bind(b, "y", file2)
    vol.exchange(volume_cap, a, "x", b, "y")
    assert vol.lookup(a, "x") == file2
    assert vol.lookup(b, "y") == file1


def test_exchange_within_one_directory(cluster, volume):
    vol, volume_cap, root = volume
    file1, file2 = _file(cluster, b"1"), _file(cluster, b"2")
    vol.bind(root, "x", file1)
    vol.bind(root, "y", file2)
    vol.exchange(volume_cap, root, "x", root, "y")
    assert vol.lookup(root, "x") == file2
    assert vol.lookup(root, "y") == file1


def test_untouched_directories_stay_updatable_during_rename(cluster, volume):
    """The §5.3 scope property in app terms: a rename holding directories
    A and B does not block directory C."""
    vol, volume_cap, root = volume
    a = vol.add_directory(volume_cap, "a", root)
    b = vol.add_directory(volume_cap, "b", root)
    c = vol.add_directory(volume_cap, "c", root)
    vol.bind(a, "moving", _file(cluster))
    update = vol.tree.begin_super_update(volume_cap)
    vol.tree.open_subfile(update, a)
    vol.tree.open_subfile(update, b)
    # C is untouched by the in-flight rename: binds fine.
    vol.bind(c, "free", _file(cluster))
    # A is inner-locked: its small updates wait.
    with pytest.raises(FileLocked):
        cluster.fs().create_version(a)
    vol.tree.abort_super(update)


def test_crashed_rename_finished_by_waiter(cluster2):
    """A rename that dies after the volume's commit reference is set is
    completed by the next waiter — never observed half-done."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    vol0 = Volume(fs0)
    volume_cap, root = vol0.create()
    src = vol0.add_directory(volume_cap, "src", root)
    dst = vol0.add_directory(volume_cap, "dst", root)
    target = fs0.create_file(b"cargo")
    vol0.bind(src, "cargo", target)

    # Perform the rename by hand up to the super commit, then crash.
    from repro.apps.directory import _pack_table, _unpack_table

    update = vol0.tree.begin_super_update(volume_cap)
    src_handle = vol0.tree.open_subfile(update, src)
    dst_handle = vol0.tree.open_subfile(update, dst)
    src_table = _unpack_table(fs0.read_page(src_handle.version, PagePath.ROOT))
    dst_table = _unpack_table(fs0.read_page(dst_handle.version, PagePath.ROOT))
    dst_table["cargo"] = src_table.pop("cargo")
    fs0.write_page(src_handle.version, PagePath.ROOT, _pack_table(src_table))
    fs0.write_page(dst_handle.version, PagePath.ROOT, _pack_table(dst_table))
    fs0.store.flush()
    fs0.commit(update.handle.version)  # volume committed...
    fs0.crash()  # ...sub-directory commits unfinished

    vol1 = Volume(fs1)
    outcome = vol1.tree.wait_or_recover(volume_cap)
    assert outcome == "finished"
    assert vol1.lookup(dst, "cargo") == target
    with pytest.raises(NoSuchEntry):
        vol1.lookup(src, "cargo")
