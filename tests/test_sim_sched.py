"""The cooperative scheduler: interleaving, ordering, error handling."""

import pytest

from repro.sim.sched import Scheduler, ScheduleError


def _counter(log, name, steps):
    for i in range(steps):
        log.append((name, i))
        yield


def test_round_robin_interleaves():
    log = []
    sched = Scheduler()
    sched.spawn("a", _counter(log, "a", 3))
    sched.spawn("b", _counter(log, "b", 3))
    sched.run()
    assert log == [
        ("a", 0), ("b", 0),
        ("a", 1), ("b", 1),
        ("a", 2), ("b", 2),
    ]


def test_results_captured():
    def worker():
        yield
        return 42

    sched = Scheduler()
    task = sched.spawn("w", worker())
    sched.run()
    assert task.done
    assert task.result == 42
    assert sched.results() == {"w": 42}


def test_spawn_fn_runs_plain_function():
    sched = Scheduler()
    sched.spawn_fn("f", lambda: 7)
    sched.run()
    assert sched.results()["f"] == 7


def test_explicit_order_drives_schedule():
    log = []
    sched = Scheduler()
    sched.spawn("a", _counter(log, "a", 2))
    sched.spawn("b", _counter(log, "b", 2))
    # Always pick task 0 of the live list: a runs to completion first.
    sched.run(order=iter([0] * 100))
    assert log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]


def test_order_indices_wrap_modulo_live():
    log = []
    sched = Scheduler()
    sched.spawn("a", _counter(log, "a", 1))
    sched.spawn("b", _counter(log, "b", 1))
    sched.run(order=iter([5, 5, 5, 5, 5, 5]))
    assert set(log) == {("a", 0), ("b", 0)}


def test_errors_recorded_and_raised():
    def bad():
        yield
        raise RuntimeError("task failed")

    sched = Scheduler()
    task = sched.spawn("bad", bad())
    with pytest.raises(RuntimeError, match="task failed"):
        sched.run()
    assert task.error is not None


def test_errors_suppressed_when_asked():
    def bad():
        yield
        raise RuntimeError("boom")

    def good():
        yield
        return "ok"

    sched = Scheduler()
    sched.spawn("bad", bad())
    sched.spawn("good", good())
    tasks = sched.run(raise_errors=False)
    assert {t.name: t.done for t in tasks} == {"bad": True, "good": True}
    assert sched.results()["good"] == "ok"


def test_max_steps_guard():
    def forever():
        while True:
            yield

    sched = Scheduler()
    sched.spawn("loop", forever())
    with pytest.raises(RuntimeError, match="exceeded"):
        sched.run(max_steps=100)


def test_exhausted_order_falls_back_to_round_robin():
    log = []
    sched = Scheduler()
    sched.spawn("a", _counter(log, "a", 3))
    sched.spawn("b", _counter(log, "b", 3))
    sched.run(order=iter([1]))  # one step of b, then round-robin
    assert log[0] == ("b", 0)
    assert len(log) == 6


def test_named_order_picks_by_task_name():
    log = []
    sched = Scheduler()
    sched.spawn("a", _counter(log, "a", 2))
    sched.spawn("b", _counter(log, "b", 2))
    sched.run(order=iter(["b", "b", "a", "a"]))
    assert log == [("b", 0), ("b", 1), ("a", 0), ("a", 1)]


def test_named_order_of_finished_task_is_an_error():
    log = []
    sched = Scheduler()
    sched.spawn("a", _counter(log, "a", 1))
    sched.spawn("b", _counter(log, "b", 3))
    # a yields once and finishes on its second resume; the third pick
    # names a corpse, and a caller-supplied order must never be fuzzed
    # silently into a different schedule.
    with pytest.raises(ScheduleError, match="already finished"):
        sched.run(order=iter(["a", "a", "a"]))


def test_named_order_of_unknown_task_is_an_error():
    sched = Scheduler()
    sched.spawn("a", _counter([], "a", 2))
    with pytest.raises(ScheduleError, match="unknown task"):
        sched.run(order=iter(["nope"]))


def test_steps_accumulate_across_runs():
    sched = Scheduler()
    sched.spawn("a", _counter([], "a", 3))
    sched.run()
    first = sched.steps
    assert first > 0
    sched.spawn("b", _counter([], "b", 2))
    sched.run()
    assert sched.steps > first
