"""Hypothesis property: leased cached reads are bounded-stale snapshots.

Random interleavings of commits, leased reads, and clock advances, over
both transports.  Two properties must hold after every read:

1. **Snapshot consistency** — the bytes returned equal a direct
   ``read_version`` of the version cap the cache entry is tagged with,
   and that version is one the file actually committed (never a torn or
   mixed-version result).
2. **Bounded staleness** — the version read is either the current one or
   one superseded no longer than the lease TTL ago, which the history
   checker proves over the recorded run (sim transport, where the
   logical clock makes the bound exact).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.api import FileClient
from repro.core.pathname import PagePath
from repro.testbed import build_cluster
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT
LEASE_TICKS = 120

# An op schedule: each element interleaves one client action.
#   ("commit", f)   writer commits a new value to file f
#   ("read", f)     leased reader reads file f through its cache
#   ("tick", n)     the clock advances n ticks (lets leases expire)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("commit"), st.integers(0, 1)),
        st.tuples(st.just("read"), st.integers(0, 1)),
        st.tuples(st.just("tick"), st.integers(1, 200)),
    ),
    min_size=1,
    max_size=30,
)


def _committed_versions(history, file_obj):
    versions = set()
    for event in history.events:
        if event.kind in ("create", "commit") and event.file == file_obj:
            versions.add(event.version)
    return versions


def _run_schedule(schedule, cluster, reader, writer, caps, history):
    serial = 0
    for op, arg in schedule:
        if op == "commit":
            serial += 1
            payload = b"f%d serial %d" % (arg, serial)
            writer.transact(caps[arg], lambda u, p=payload: u.write(ROOT, p))
        elif op == "read":
            cap = caps[arg]
            data = reader.read(cap)
            entry = reader.cache.entry(cap)
            if entry is not None:
                # Snapshot consistency: the bytes are exactly the tagged
                # version's bytes, and that version really committed.
                assert data == reader.read_version(entry.version_cap, ROOT)
                assert entry.version_cap.obj in _committed_versions(
                    history, cap.obj
                )
        else:
            cluster.clock.advance(arg)


@given(schedule=ops)
@settings(max_examples=60, deadline=None)
def test_leased_reads_are_bounded_stale_snapshots_sim(schedule):
    history = HistoryRecorder()
    cluster = build_cluster(servers=2, seed=9, history=history)
    writer = FileClient(cluster.network, "writer", cluster.service_port,
                        history=history)
    reader = FileClient(cluster.network, "reader", cluster.service_port,
                        history=history, lease_ticks=LEASE_TICKS)
    caps = [writer.create_file(b"f%d serial 0" % i) for i in range(2)]
    _run_schedule(schedule, cluster, reader, writer, caps, history)
    result = check_history(history)
    assert result.ok, result.violations


@given(schedule=ops)
@settings(max_examples=5, deadline=None)
def test_leased_reads_are_consistent_snapshots_tcp(schedule):
    """The same schedule over real sockets (wall-clock leases: the
    per-read snapshot-consistency assertion is the checked property;
    the tick bound is only meaningful on the logical clock)."""
    from repro.net import build_tcp_cluster

    history = HistoryRecorder()
    cluster = build_tcp_cluster(servers=2, seed=9, history=history)
    try:
        writer = cluster.client("writer", history=history)
        reader = cluster.client("reader", history=history,
                                lease_ticks=5_000_000)
        caps = [writer.create_file(b"f%d serial 0" % i) for i in range(2)]
        _run_schedule(schedule, cluster, reader, writer, caps, history)
    finally:
        cluster.stop()
