"""Semantic merges through the full stack: service commits, group-commit
chains, the redo loop's starvation bound, durable media, TCP, and the
merge-aware history checker.

The unit rules of the or-set itself live in test_merge_orset.py; here the
merge layer is exercised the way deployments hit it — two concurrent
committed rewrites of a merge-typed directory page arriving at
``occ.serialise`` (and its group-commit chain), with the strictness
boundary (same-entry divergence still conflicts) checked end to end.
"""

from __future__ import annotations

import pytest

from repro.apps.directory import _pack_table, _unpack_table
from repro.apps.volume import Volume
from repro.capability import CapabilityIssuer
from repro.client.api import FileClient
from repro.core.pathname import PagePath
from repro.core.registry import FileRegistry
from repro.core.service import FileService
from repro.errors import CommitConflict, MergeConflict, UpdateStarved
from repro.merge.orset import encode_entries
from repro.testbed import build_cluster
from repro.tools.salvage import salvage
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT


def _bind(fs, handle, name, target):
    table = _unpack_table(fs.read_page(handle.version, ROOT))
    table[name] = target
    fs.write_page(handle.version, ROOT, _pack_table(table))


def _final_names(fs, cap) -> set[str]:
    raw = fs.read_page(fs.current_version(cap), ROOT)
    return set(_unpack_table(raw))


# ---------------------------------------------------------------------------
# the commit path
# ---------------------------------------------------------------------------


def test_concurrent_distinct_binds_both_commit(fs):
    cap = fs.create_file(_pack_table({}), mergeable=True)
    first = fs.create_version(cap)
    second = fs.create_version(cap)
    _bind(fs, first, "alpha", cap)
    _bind(fs, second, "beta", cap)
    assert fs.commit(first.version) == []
    merged = fs.commit(second.version)  # W/W overlap on ROOT → merged
    assert merged == [str(ROOT)]
    assert _final_names(fs, cap) == {"alpha", "beta"}
    assert fs.metrics.semantic_merges == 1
    assert fs.metrics.merge_conflicts == 0


def test_same_entry_divergent_targets_still_conflict(fs):
    cap = fs.create_file(_pack_table({}), mergeable=True)
    other = fs.create_file(b"target")
    first = fs.create_version(cap)
    second = fs.create_version(cap)
    _bind(fs, first, "name", cap)
    _bind(fs, second, "name", other)
    fs.commit(first.version)
    with pytest.raises(CommitConflict, match="merge: "):
        fs.commit(second.version)
    assert _final_names(fs, cap) == {"name"}
    assert fs.metrics.merge_conflicts == 1


def test_remove_of_renamed_entry_survives(fs):
    cap = fs.create_file(_pack_table({}), mergeable=True)
    seed = fs.create_version(cap)
    _bind(fs, seed, "old", cap)
    fs.commit(seed.version)
    renamer = fs.create_version(cap)
    remover = fs.create_version(cap)
    table = _unpack_table(fs.read_page(renamer.version, ROOT))
    table["new"] = table.pop("old")
    fs.write_page(renamer.version, ROOT, _pack_table(table))
    fs.write_page(remover.version, ROOT, _pack_table({}))
    fs.commit(renamer.version)
    fs.commit(remover.version)  # removes only the binding it observed
    assert _final_names(fs, cap) == {"new"}


def test_mergeable_flag_off_means_strict(fs):
    cap = fs.create_file(_pack_table({}))  # NOT merge-typed
    first = fs.create_version(cap)
    second = fs.create_version(cap)
    _bind(fs, first, "alpha", cap)
    _bind(fs, second, "beta", cap)
    fs.commit(first.version)
    with pytest.raises(CommitConflict):
        fs.commit(second.version)


def test_merge_policy_none_restores_seed_behaviour(fs):
    fs.merge_policy = None
    cap = fs.create_file(_pack_table({}), mergeable=True)
    first = fs.create_version(cap)
    second = fs.create_version(cap)
    _bind(fs, first, "alpha", cap)
    _bind(fs, second, "beta", cap)
    fs.commit(first.version)
    with pytest.raises(CommitConflict):
        fs.commit(second.version)
    assert fs.metrics.semantic_merges == 0


def test_three_deep_version_chain_catches_up(fs):
    """The last committer serialises through three already-committed
    predecessors, merging round by round."""
    cap = fs.create_file(_pack_table({}), mergeable=True)
    handles = [fs.create_version(cap) for _ in range(4)]
    for i, handle in enumerate(handles):
        _bind(fs, handle, f"writer-{i}", cap)
    for handle in handles:
        fs.commit(handle.version)
    assert _final_names(fs, cap) == {f"writer-{i}" for i in range(4)}
    # 1 + 2 + 3 pairwise merges across the three catch-up commits.
    assert fs.metrics.semantic_merges == 6


def test_group_commit_chain_merges(cluster):
    """``commit_group`` settles overlapping updates through
    ``serialise_through``; merged members come back "committed-merged"."""
    client = FileClient(
        cluster.network, "grouper", cluster.service_port, use_cache=False
    )
    cap = client.create_file(_pack_table({}), mergeable=True)
    client.prefer_server = client.ping()
    updates = []
    for i in range(4):
        update = client.begin(cap)
        table = _unpack_table(update.read(ROOT))
        table[f"member-{i}"] = cap
        update.write(ROOT, _pack_table(table))
        updates.append(update)
    outcomes = client.commit_group(updates)
    assert all(v.startswith("committed") for v in outcomes.values()), outcomes
    assert "committed-merged" in outcomes.values()
    assert set(_unpack_table(client.read(cap))) == {
        f"member-{i}" for i in range(4)
    }


# ---------------------------------------------------------------------------
# durable media and the wire
# ---------------------------------------------------------------------------


def test_merge_typed_pages_survive_restart(tmp_path):
    """The mergeable bit rides the page header onto the file-backed disk:
    after the deployment is torn down and rebuilt over the same block
    files — the SIGKILL-and-restart path — an amnesiac server salvaging
    the registry from the blocks alone still merges."""
    data_dir = str(tmp_path / "blocks")
    before = build_cluster(servers=1, seed=51, backend="disk", data_dir=data_dir)
    fs = before.fs()
    cap = fs.create_file(_pack_table({}), mergeable=True)
    first = fs.create_version(cap)
    second = fs.create_version(cap)
    _bind(fs, first, "pre-crash-a", cap)
    _bind(fs, second, "pre-crash-b", cap)
    fs.commit(first.version)
    fs.commit(second.version)
    fs.store.flush()

    # A fresh process over the same directory: new network, new registry,
    # new secrets; only the disk images survive.
    after = build_cluster(servers=1, seed=52, backend="disk", data_dir=data_dir)
    reborn = FileService(
        "reborn",
        after.network,
        FileRegistry(),
        CapabilityIssuer(after.service_port),
        after.block_port,
        account=1,
    )
    report = salvage(reborn)
    entries = {obj: reborn.registry.file(obj) for obj in report.files}
    merge_typed = [e for e in entries.values() if e.mergeable]
    assert len(merge_typed) == 1
    recovered_cap = report.files[merge_typed[0].obj]
    assert _final_names(reborn, recovered_cap) == {"pre-crash-a", "pre-crash-b"}
    first = reborn.create_version(recovered_cap)
    second = reborn.create_version(recovered_cap)
    _bind(reborn, first, "post-crash-a", recovered_cap)
    _bind(reborn, second, "post-crash-b", recovered_cap)
    reborn.commit(first.version)
    reborn.commit(second.version)
    assert _final_names(reborn, recovered_cap) == {
        "pre-crash-a", "pre-crash-b", "post-crash-a", "post-crash-b",
    }
    assert reborn.metrics.semantic_merges == 1


def test_merge_parity_over_tcp():
    from repro.net.cluster import build_tcp_cluster

    cluster = build_tcp_cluster(servers=1, seed=53)
    try:
        client = cluster.client("tcp-merger", use_cache=False)
        cap = client.create_file(_pack_table({}), mergeable=True)
        first = client.begin(cap)
        second = client.begin(cap)
        for update, name in ((first, "sock-a"), (second, "sock-b")):
            table = _unpack_table(update.read(ROOT))
            table[name] = cap
            update.write(ROOT, _pack_table(table))
        first.commit()
        second.commit()
        assert set(_unpack_table(client.read(cap))) == {"sock-a", "sock-b"}
    finally:
        cluster.stop()


# ---------------------------------------------------------------------------
# the redo loop's starvation bound (apps/volume.py)
# ---------------------------------------------------------------------------


def _starving_volume(fs, attempts: int):
    volume = Volume(fs)
    volume.max_update_attempts = attempts
    delays: list[float] = []
    volume._sleep = delays.append
    _volume_cap, root_dir = volume.create()
    return volume, root_dir, delays


def test_update_starved_after_bounded_attempts(fs):
    fs.merge_policy = None  # force every race to a genuine conflict
    volume, root_dir, delays = _starving_volume(fs, attempts=3)
    beaten = 0

    def mutate(table):
        # A competitor commits between our read and our commit, every time.
        nonlocal beaten
        handle = fs.create_version(root_dir)
        rival = _unpack_table(fs.read_page(handle.version, ROOT))
        rival[f"rival-{beaten}"] = root_dir
        fs.write_page(handle.version, ROOT, _pack_table(rival))
        fs.commit(handle.version)
        beaten += 1
        table["loser"] = root_dir

    with pytest.raises(UpdateStarved) as excinfo:
        volume._update_table(root_dir, mutate)
    exc = excinfo.value
    assert exc.attempts == 3
    assert isinstance(exc, CommitConflict)  # redo loops need no new except arm
    assert isinstance(exc.__cause__, CommitConflict)  # the losing beat
    # One jittered, capped, exponential backoff between attempts — none
    # after the last.
    assert len(delays) == 2
    assert all(0 < d <= volume.backoff_cap * 1.5 for d in delays)
    assert "loser" not in volume.list(root_dir)


def test_merges_absorb_the_same_race_without_retrying(fs):
    """With the merge layer on (the default), the identical rival commits
    are reconciled on the first attempt: no sleeps, no retries."""
    volume, root_dir, delays = _starving_volume(fs, attempts=3)

    def mutate(table):
        handle = fs.create_version(root_dir)
        rival = _unpack_table(fs.read_page(handle.version, ROOT))
        rival["rival"] = root_dir
        fs.write_page(handle.version, ROOT, _pack_table(rival))
        fs.commit(handle.version)
        table["winner"] = root_dir

    volume._update_table(root_dir, mutate)
    assert delays == []
    assert set(volume.list(root_dir)) >= {"rival", "winner"}


# ---------------------------------------------------------------------------
# the merge-aware history checker
# ---------------------------------------------------------------------------

_T1, _T2 = b"\x01" * 22, b"\x02" * 22


def _merged_history(second_write: bytes) -> HistoryRecorder:
    """Two concurrent rewrites of a merge-typed root table, both of which
    the service committed; the checker must re-derive the second commit
    through the or-set fold."""
    h = HistoryRecorder()
    h.record("merge_typed", actor="fs0", file=1)
    h.record("create", actor="fs0", file=1, version=10, path="", value=encode_entries({}))
    h.record("begin", actor="c1", file=1, version=11, base=10)
    h.record("read", actor="c1", file=1, version=11, path="", value=encode_entries({}))
    h.record("write", actor="c1", file=1, version=11, path="",
             value=encode_entries({"left": _T1}))
    h.record("begin", actor="c2", file=1, version=12, base=10)
    h.record("read", actor="c2", file=1, version=12, path="", value=encode_entries({}))
    h.record("write", actor="c2", file=1, version=12, path="", value=second_write)
    h.record("commit", actor="fs0", file=1, version=11)
    h.record("commit", actor="fs0", file=1, version=12)
    return h


def test_checker_replays_distinct_entry_merge():
    result = check_history(_merged_history(encode_entries({"right": _T2})))
    assert result.ok, result.violations
    assert result.merge_folds == 1
    assert result.merge_files_checked == 1


def test_checker_flags_merge_divergence():
    """If the service publishes a commit the or-set semantics reject —
    both sides bound the same entry to different targets — the replay
    must call it out."""
    result = check_history(_merged_history(encode_entries({"left": _T2})))
    assert not result.ok
    assert any(v.kind == "merge-divergence" for v in result.violations)


def test_checker_still_strict_for_untyped_files():
    """Without the merge_typed event the identical log is a lost update."""
    h = _merged_history(encode_entries({"right": _T2}))
    h.events = [e for e in h.events if e.kind != "merge_typed"]
    result = check_history(h)
    assert any(v.kind == "non-serializable-read" for v in result.violations)


def test_merge_conflict_is_a_commit_conflict():
    assert issubclass(MergeConflict, CommitConflict)
    assert issubclass(UpdateStarved, CommitConflict)
