"""The history checker: serializability, snapshots, aborts, lineage.

These tests feed hand-built event streams to :func:`check_history` so each
invariant is exercised in isolation; the end-to-end path (real deployments
recording real histories) lives in test_explore.py.
"""

from repro.verify.history import HistoryRecorder, check_history


def _serial_update(h, file, version, base, path, read, write, actor="c"):
    """One well-formed update: begin, read, write, commit."""
    h.record("begin", actor=actor, file=file, version=version, base=base)
    h.record("read", actor=actor, file=file, version=version, path=path, value=read)
    h.record("write", actor=actor, file=file, version=version, path=path, value=write)
    h.record("commit", actor="fs0", file=file, version=version)


def test_clean_serial_history_passes():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("write", actor="fs0", file=1, version=10, path="0", value=b"v0")
    _serial_update(h, 1, 11, 10, "0", read=b"v0", write=b"v1")
    _serial_update(h, 1, 12, 11, "0", read=b"v1", write=b"v2")
    result = check_history(h)
    assert result.ok
    assert result.files_checked == 1
    assert result.committed_versions == 3  # create counts as a commit
    assert result.reads_checked == 2


def test_non_serializable_read_flagged():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("write", actor="fs0", file=1, version=10, path="0", value=b"v0")
    _serial_update(h, 1, 11, 10, "0", read=b"v0", write=b"v1")
    # Version 12 commits AFTER 11 but read the pre-11 value: a lost update.
    _serial_update(h, 1, 12, 10, "0", read=b"v0", write=b"v2")
    result = check_history(h)
    assert not result.ok
    assert any(v.kind == "non-serializable-read" for v in result.violations)


def test_double_commit_flagged():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("begin", actor="c", file=1, version=11, base=10)
    h.record("commit", actor="fs0", file=1, version=11)
    h.record("commit", actor="fs1", file=1, version=11)
    result = check_history(h)
    assert any(v.kind == "double-commit" for v in result.violations)


def test_commit_after_abort_flagged():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("begin", actor="c", file=1, version=11, base=10)
    h.record("abort", actor="fs0", file=1, version=11)
    h.record("commit", actor="fs0", file=1, version=11)
    result = check_history(h)
    assert any(v.kind == "commit-after-abort" for v in result.violations)


def test_aborted_update_leaves_no_trace():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("write", actor="fs0", file=1, version=10, path="0", value=b"v0")
    h.record("begin", actor="c", file=1, version=11, base=10)
    h.record("write", actor="c", file=1, version=11, path="0", value=b"doomed")
    h.record("abort", actor="fs0", file=1, version=11)
    # The aborted write must not appear in the replayed serial state.
    result = check_history(h, final_state={1: {"0": b"v0"}})
    assert result.ok
    assert result.aborted_versions == 1


def test_aborted_write_leak_is_durable_divergence():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("write", actor="fs0", file=1, version=10, path="0", value=b"v0")
    h.record("begin", actor="c", file=1, version=11, base=10)
    h.record("write", actor="c", file=1, version=11, path="0", value=b"doomed")
    h.record("abort", actor="fs0", file=1, version=11)
    result = check_history(h, final_state={1: {"0": b"doomed"}})
    assert any(v.kind == "durable-divergence" for v in result.violations)


def test_uncommitted_base_flagged():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    # Version 12 grew from version 11, which never committed (e.g. its
    # blocks were freed): recovery must never expose such a graft.
    h.record("begin", actor="c", file=1, version=12, base=11)
    h.record("commit", actor="fs0", file=1, version=12)
    result = check_history(h)
    assert any(v.kind == "uncommitted-base" for v in result.violations)


def test_stale_snapshot_read_flagged():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("write", actor="fs0", file=1, version=10, path="0", value=b"v0")
    _serial_update(h, 1, 11, 10, "0", read=b"v0", write=b"v1")
    # Committed versions are immutable: a read of version 11 must see v1.
    h.record(
        "snapshot_read", actor="cache", file=1, version=11, path="0", value=b"v0"
    )
    result = check_history(h)
    assert any(v.kind == "stale-snapshot-read" for v in result.violations)
    assert result.snapshot_reads_checked == 1


def test_snapshot_read_of_aborted_version_flagged():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("begin", actor="c", file=1, version=11, base=10)
    h.record("abort", actor="fs0", file=1, version=11)
    h.record(
        "snapshot_read", actor="cache", file=1, version=11, path="0", value=b"x"
    )
    result = check_history(h)
    assert any(v.kind == "aborted-version-exposed" for v in result.violations)


def test_structural_surgery_makes_file_opaque():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("write", actor="fs0", file=1, version=10, path="0", value=b"v0")
    h.record("structure", actor="fs0", file=1, version=10, path="0")
    # This read would be flagged on a replayable file; on an opaque one the
    # path-keyed checks are skipped (renumbering made them unsound)...
    _serial_update(h, 1, 11, 10, "0", read=b"garbage", write=b"v1")
    result = check_history(h)
    assert result.ok
    assert result.opaque_files == [1]
    # ...but ordering invariants still apply.
    h.record("commit", actor="fs1", file=1, version=11)
    result = check_history(h)
    assert any(v.kind == "double-commit" for v in result.violations)


def test_abort_events_are_idempotent():
    h = HistoryRecorder()
    h.record("create", actor="fs0", file=1, version=10)
    h.record("begin", actor="c", file=1, version=11, base=10)
    h.record("abort", actor="fs0", file=1, version=11)
    h.record("abort", actor="fs0", file=1, version=11)  # server-side cleanup
    result = check_history(h)
    assert result.ok
    assert result.aborted_versions == 1
