"""The observed-remove-set merge: entry-table codec and three-way rules.

Unit tests pin every row of the merge table in :mod:`repro.merge.orset`'s
docstring; the hypothesis suite property-checks the algebra the module
promises — commutativity (including *which* cases conflict), idempotence
and canonical re-encoding — over arbitrary small tables.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.directory import _pack_table
from repro.capability import Capability
from repro.errors import MergeConflict
from repro.merge.orset import (
    decode_entries,
    encode_entries,
    merge_entries,
    merge_tables,
)

A, B, C = b"A" * 22, b"B" * 22, b"C" * 22


def table(**entries: bytes) -> bytes:
    return encode_entries(dict(entries))


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


def test_empty_round_trip():
    assert decode_entries(b"") == {}
    assert decode_entries(encode_entries({})) == {}


def test_round_trip_and_canonical_order():
    entries = {"zeta": A, "alpha": B, "m": C}
    raw = encode_entries(entries)
    assert decode_entries(raw) == entries
    # Sorted-name re-encoding: insertion order never leaks into the bytes.
    assert raw == encode_entries({"m": C, "zeta": A, "alpha": B})


def test_encoding_matches_directory_pack_table():
    """The codec must stay byte-identical to the directory layer's format —
    that is what lets the server merge real directory pages."""
    caps = {
        "bin": Capability(port=7, obj=3, rights=0xFF, check=42),
        "usr": Capability(port=9, obj=8, rights=0x0F, check=7),
    }
    packed = {name: cap.pack() for name, cap in caps.items()}
    assert encode_entries(packed) == _pack_table(caps)


def test_opaque_bytes_are_rejected():
    with pytest.raises(MergeConflict):
        decode_entries(b"not a table at all")


def test_truncated_table_rejected():
    raw = table(a=A)
    with pytest.raises(MergeConflict):
        decode_entries(raw[:-1])


def test_trailing_garbage_rejected():
    with pytest.raises(MergeConflict):
        decode_entries(table(a=A) + b"x")


# ---------------------------------------------------------------------------
# the three-way rules
# ---------------------------------------------------------------------------


def test_distinct_adds_union():
    merged = merge_tables(table(), table(a=A), table(b=B))
    assert decode_entries(merged) == {"a": A, "b": B}


def test_one_sided_change_wins():
    base = table(a=A)
    assert decode_entries(merge_tables(base, table(a=B), base)) == {"a": B}
    assert decode_entries(merge_tables(base, base, table(a=B))) == {"a": B}


def test_identical_changes_agree():
    merged = merge_tables(table(a=A), table(a=B), table(a=B))
    assert decode_entries(merged) == {"a": B}


def test_both_removed_agree():
    assert decode_entries(merge_tables(table(a=A), table(), table())) == {}


def test_same_entry_divergent_targets_conflict():
    with pytest.raises(MergeConflict, match="different targets"):
        merge_tables(table(), table(a=A), table(a=B))


def test_rebind_vs_remove_conflict():
    with pytest.raises(MergeConflict, match="rebound and removed"):
        merge_tables(table(a=A), table(a=B), table())


def test_remove_of_renamed_survives():
    """The observed-remove property: a rename (remove ``a`` + add ``b``)
    concurrent with a plain remove of ``a`` — the removal only takes the
    binding it saw, the renamed entry stays."""
    base = table(a=A)
    renamed = table(b=A)
    removed = table()
    assert decode_entries(merge_tables(base, renamed, removed)) == {"b": A}
    assert decode_entries(merge_tables(base, removed, renamed)) == {"b": A}


# ---------------------------------------------------------------------------
# the algebra, property-checked
# ---------------------------------------------------------------------------

_names = st.text(alphabet="abcd", min_size=1, max_size=3)
_values = st.sampled_from([A, B, C])
_tables = st.dictionaries(_names, _values, max_size=5)


def _try_merge(base, ours, theirs):
    try:
        return ("ok", merge_entries(base, ours, theirs))
    except MergeConflict:
        return ("conflict", None)


@settings(max_examples=200)
@given(_tables, _tables, _tables)
def test_merge_is_commutative(base, ours, theirs):
    """Swapping the two sides changes nothing — including whether the
    merge conflicts at all."""
    assert _try_merge(base, ours, theirs) == _try_merge(base, theirs, ours)


@settings(max_examples=200)
@given(_tables, _tables)
def test_merge_is_idempotent(base, ours):
    assert merge_entries(base, ours, ours) == ours


@settings(max_examples=200)
@given(_tables, _tables)
def test_unchanged_side_is_identity(base, ours):
    assert merge_entries(base, ours, dict(base)) == ours


@settings(max_examples=200)
@given(_tables, _tables, _tables)
def test_encoded_merge_is_canonical(base, ours, theirs):
    """merge_tables is exactly merge_entries under the codec, and its
    output re-decodes to itself (canonical bytes)."""
    verdict, merged = _try_merge(base, ours, theirs)
    if verdict == "conflict":
        with pytest.raises(MergeConflict):
            merge_tables(
                encode_entries(base), encode_entries(ours), encode_entries(theirs)
            )
        return
    raw = merge_tables(
        encode_entries(base), encode_entries(ours), encode_entries(theirs)
    )
    assert decode_entries(raw) == merged
    assert encode_entries(decode_entries(raw)) == raw
