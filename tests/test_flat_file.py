"""The flat (linear) file server."""

import pytest

from repro.apps.flat_file import FlatFileServer


@pytest.fixture
def flat(client):
    return FlatFileServer(client, extent_size=16)


def test_create_and_read(flat):
    cap = flat.create(b"hello world")
    assert flat.read(cap) == b"hello world"
    assert flat.size(cap) == 11


def test_empty_file(flat):
    cap = flat.create()
    assert flat.read(cap) == b""
    assert flat.size(cap) == 0


def test_multi_extent_content(flat):
    payload = bytes(range(256)) * 2  # 512 bytes over 16-byte extents
    cap = flat.create(payload)
    assert flat.read(cap) == payload


def test_partial_reads(flat):
    cap = flat.create(b"0123456789abcdefABCDEFGHIJKLMNOP")
    assert flat.read(cap, 0, 4) == b"0123"
    assert flat.read(cap, 14, 4) == b"efAB"  # crosses an extent boundary
    assert flat.read(cap, 30) == b"OP"
    assert flat.read(cap, 100, 5) == b""


def test_overwrite_in_place(flat):
    cap = flat.create(b"aaaaaaaaaaaaaaaaaaaaaaaa")
    flat.write(cap, 10, b"XYZ")
    assert flat.read(cap) == b"aaaaaaaaaaXYZaaaaaaaaaaa"
    assert flat.size(cap) == 24


def test_write_extends_file(flat):
    cap = flat.create(b"short")
    flat.write(cap, 20, b"far")
    assert flat.size(cap) == 23
    data = flat.read(cap)
    assert data[:5] == b"short"
    assert data[20:] == b"far"
    assert data[5:20] == b"\x00" * 15


def test_append(flat):
    cap = flat.create(b"start")
    offset = flat.append(cap, b"-end")
    assert offset == 5
    assert flat.read(cap) == b"start-end"


def test_binary_safety(flat):
    """Zero bytes are data, not padding."""
    payload = b"\x00\x01\x00" * 20
    cap = flat.create(payload)
    assert flat.read(cap) == payload


def test_truncate(flat):
    cap = flat.create(b"0123456789abcdefABCDEFGH")
    flat.truncate(cap, 10)
    assert flat.size(cap) == 10
    assert flat.read(cap) == b"0123456789"


def test_truncate_to_zero(flat):
    cap = flat.create(b"data" * 10)
    flat.truncate(cap, 0)
    assert flat.read(cap) == b""


def test_truncate_beyond_length_is_noop(flat):
    cap = flat.create(b"data")
    flat.truncate(cap, 100)
    assert flat.read(cap) == b"data"


def test_concurrent_disjoint_writes_merge(cluster):
    """Two clients writing disjoint extents of the same flat file both
    succeed with no redo: the paper's airline argument in file form."""
    from repro.client.api import FileClient

    a = FileClient(cluster.network, "a", cluster.service_port)
    b = FileClient(cluster.network, "b", cluster.service_port)
    fa, fb = FlatFileServer(a, extent_size=16), FlatFileServer(b, extent_size=16)
    cap = fa.create(b"x" * 64)
    fa.write(cap, 0, b"AAAA")
    fb.write(cap, 48, b"BBBB")
    data = fa.read(cap)
    assert data[0:4] == b"AAAA"
    assert data[48:52] == b"BBBB"


def test_concurrent_appends_serialise(cluster):
    from repro.client.api import FileClient

    a = FileClient(cluster.network, "a", cluster.service_port)
    b = FileClient(cluster.network, "b", cluster.service_port)
    fa, fb = FlatFileServer(a, extent_size=8), FlatFileServer(b, extent_size=8)
    cap = fa.create(b"")
    fa.append(cap, b"1111")
    fb.append(cap, b"2222")
    fa.append(cap, b"3333")
    assert fa.read(cap) == b"111122223333"
