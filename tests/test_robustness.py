"""Fault-injection sweeps: the system under sustained adversity."""

import pytest

from repro.errors import CommitConflict, ReproError
from repro.core.pathname import PagePath
from repro.client.api import FileClient
from repro.sim.faults import DropPolicy
from repro.sim.sched import Scheduler
from repro.testbed import build_cluster

ROOT = PagePath.ROOT


def test_survives_message_drops(cluster2):
    """Dropped messages are retried at the transaction layer; the file
    system stays consistent throughout."""
    cluster2.network.drop_policy = DropPolicy(drop_every=17)
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"start")
    for n in range(10):
        client.transact(cap, lambda u, n=n: u.write(ROOT, b"n%d" % n))
    assert client.read(cap) == b"n9"
    assert cluster2.network.drop_policy.dropped > 0


def test_corruption_of_any_single_block_is_survivable(cluster):
    """Every block is on two disks: corrupt each block of one disk in
    turn and verify every page of the file still reads correctly."""
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    for i in range(4):
        fs.append_page(handle.version, ROOT, b"payload%d" % i)
    fs.commit(handle.version)
    for block in list(cluster.pair.a.local.allocated_blocks()):
        cluster.pair.disk_a.corrupt(block)
    fs.store.cache.clear()
    current = fs.current_version(cap)
    for i in range(4):
        assert fs.read_page(current, PagePath.of(i)) == b"payload%d" % i
    # Every block that was read got repaired in place on disk A.
    entry = cluster.registry.version_by_block(
        cluster.registry.file(cap.obj).entry_block
    )
    root_page = fs.store.load(entry.root_block)
    for ref in root_page.refs:
        assert cluster.pair.disk_a.read(ref.block) == cluster.pair.disk_b.read(
            ref.block
        )


def test_repeated_crash_restart_cycles(cluster2):
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"0")
    for cycle in range(5):
        victim = cluster2.fs(cycle % 2)
        victim.crash()
        client.transact(cap, lambda u, c=cycle: u.write(ROOT, b"c%d" % c))
        victim.restart()
    assert client.read(cap) == b"c4"


def test_interleaved_clients_with_scheduler(cluster):
    """Many cooperative clients hammering one counter; every increment
    must land exactly once (the read-modify-write redo loop)."""
    net = cluster.network
    clients = [FileClient(net, f"h{i}", cluster.service_port) for i in range(5)]
    cap = clients[0].create_file(b"0")

    def incrementer(client, times):
        for _ in range(times):
            done = False
            while not done:
                update = client.begin(cap)
                value = int(update.read(ROOT))
                yield
                update.write(ROOT, b"%d" % (value + 1))
                try:
                    update.commit()
                    done = True
                except CommitConflict:
                    pass
            yield

    sched = Scheduler()
    for i, client in enumerate(clients):
        sched.spawn(f"client{i}", incrementer(client, 4))
    sched.run()
    assert clients[0].read(cap) == b"20"


def test_block_half_crash_mid_workload(cluster2):
    """A block-server half dies in the middle of a stream of updates;
    after resync the pair is bit-identical."""
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"x")
    for n in range(3):
        client.transact(cap, lambda u, n=n: u.write(ROOT, b"pre%d" % n))
    cluster2.pair.b.crash()
    for n in range(3):
        client.transact(cap, lambda u, n=n: u.write(ROOT, b"mid%d" % n))
    cluster2.pair.b.restart()
    cluster2.pair.b.resync()
    assert cluster2.pair.consistent()
    for n in range(3):
        client.transact(cap, lambda u, n=n: u.write(ROOT, b"post%d" % n))
    assert client.read(cap) == b"post2"
    assert cluster2.pair.consistent()


def test_uncommitted_work_is_expendable_by_design(cluster2):
    """"Uncommitted versions are therefore not as important as committed
    versions": losing any number of them never perturbs committed state."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"stable")
    handles = [fs0.create_version(cap) for _ in range(5)]
    for i, handle in enumerate(handles):
        fs0.write_page(handle.version, ROOT, b"tentative%d" % i)
    fs0.crash()  # all five uncommitted versions die with the server
    assert fs1.read_page(fs1.current_version(cap), ROOT) == b"stable"
    cluster2.gc(1).collect()
    assert fs1.read_page(fs1.current_version(cap), ROOT) == b"stable"


def test_gc_under_faults_never_frees_live_data(cluster2):
    """Sweep safety with a crashed server's garbage interleaved with live
    updates: all committed data remains reachable afterwards."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    caps = [fs0.create_file(b"file%d" % i) for i in range(3)]
    doomed = fs0.create_version(caps[0])
    fs0.write_page(doomed.version, ROOT, b"junk")
    fs0.store.flush()
    fs0.crash()

    def updates():
        for n in range(4):
            handle = fs1.create_version(caps[n % 3])
            fs1.write_page(handle.version, ROOT, b"u%d" % n)
            yield
            fs1.commit(handle.version)
            yield

    def collector():
        return (yield from cluster2.gc(1).run_incremental())

    sched = Scheduler()
    sched.spawn("updates", updates())
    sched.spawn("gc", collector())
    sched.run()
    assert fs1.read_page(fs1.current_version(caps[0]), ROOT) == b"u3"
    assert fs1.read_page(fs1.current_version(caps[1]), ROOT) == b"u1"
    assert fs1.read_page(fs1.current_version(caps[2]), ROOT) == b"u2"
