"""Port-addressed transactions: dispatch, failover, drop retries."""

import pytest

from repro.errors import ServerUnreachable
from repro.sim.faults import DropPolicy
from repro.sim.network import Network
from repro.sim.rpc import RpcEndpoint, Transaction, failover_order


class Adder:
    def __init__(self, name):
        self.name = name
        self.calls = 0

    def cmd_add(self, a, b):
        self.calls += 1
        return a + b

    def cmd_whoami(self):
        return self.name


@pytest.fixture
def net():
    return Network()


def test_dispatch_to_cmd_method(net):
    RpcEndpoint(net, "s1", 0x100, Adder("s1"))
    txn = Transaction(net, "cli")
    assert txn.call(0x100, "add", a=2, b=3) == 5


def test_unknown_command_is_unreachable_error(net):
    RpcEndpoint(net, "s1", 0x100, Adder("s1"))
    txn = Transaction(net, "cli")
    with pytest.raises(ServerUnreachable):
        txn.call(0x100, "frobnicate")


def test_no_server_on_port(net):
    txn = Transaction(net, "cli")
    with pytest.raises(ServerUnreachable):
        txn.call(0x999, "add", a=1, b=2)


def test_failover_to_second_server(net):
    a, b = Adder("s1"), Adder("s2")
    e1 = RpcEndpoint(net, "s1", 0x100, a)
    RpcEndpoint(net, "s2", 0x100, b)
    e1.detach()
    txn = Transaction(net, "cli")
    assert txn.call(0x100, "whoami") == "s2"


def test_prefer_routes_to_named_server(net):
    RpcEndpoint(net, "s1", 0x100, Adder("s1"))
    RpcEndpoint(net, "s2", 0x100, Adder("s2"))
    txn = Transaction(net, "cli")
    assert txn.call(0x100, "whoami", prefer="s2") == "s2"
    assert txn.call(0x100, "whoami") == "s1"


def test_all_servers_down_raises(net):
    e1 = RpcEndpoint(net, "s1", 0x100, Adder("s1"))
    e2 = RpcEndpoint(net, "s2", 0x100, Adder("s2"))
    e1.detach()
    e2.detach()
    txn = Transaction(net, "cli")
    with pytest.raises(ServerUnreachable):
        txn.call(0x100, "whoami")


def test_dropped_request_is_retried(net):
    server = Adder("s1")
    RpcEndpoint(net, "s1", 0x100, server)
    net.drop_policy = DropPolicy(drop_nth=frozenset({1}))
    txn = Transaction(net, "cli")
    assert txn.call(0x100, "add", a=1, b=1) == 2
    assert server.calls == 1


def test_reattach_after_detach(net):
    server = Adder("s1")
    endpoint = RpcEndpoint(net, "s1", 0x100, server)
    endpoint.detach()
    endpoint.reattach()
    txn = Transaction(net, "cli")
    assert txn.call(0x100, "whoami") == "s1"


def test_failover_order_is_deterministic(net):
    """The order servers on a port are tried is sorted by name with the
    preferred server first — independent of registration order.  The TCP
    transaction layer shares the same helper, so sim runs predict real
    deployments."""
    assert failover_order(["s2", "s3", "s1"]) == ["s1", "s2", "s3"]
    assert failover_order(["s3", "s1", "s2"], prefer="s2") == ["s2", "s1", "s3"]
    # A preference for an unknown server falls back to the sorted order.
    assert failover_order(["s2", "s1"], prefer="nope") == ["s1", "s2"]
    assert failover_order([]) == []
    # End to end: registration order does not decide who serves.
    RpcEndpoint(net, "zeta", 0x100, Adder("zeta"))
    RpcEndpoint(net, "alpha", 0x100, Adder("alpha"))
    txn = Transaction(net, "cli")
    assert txn.call(0x100, "whoami") == "alpha"


def test_exceptions_propagate_to_caller(net):
    class Bomb:
        def cmd_boom(self):
            raise ValueError("kaboom")

    RpcEndpoint(net, "s1", 0x100, Bomb())
    txn = Transaction(net, "cli")
    with pytest.raises(ValueError, match="kaboom"):
        txn.call(0x100, "boom")
