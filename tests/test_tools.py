"""The fsck checker and the inspector."""

import pytest

from repro.core.pathname import PagePath
from repro.core.system_tree import SystemTree
from repro.errors import CommitConflict
from repro.tools.check import check_cluster, check_file, CheckReport
from repro.tools.inspect import dump_family, dump_page_tree

ROOT = PagePath.ROOT


def _populate(cluster):
    fs = cluster.fs()
    caps = []
    for f in range(2):
        cap = fs.create_file(b"file%d" % f)
        handle = fs.create_version(cap)
        child = fs.append_page(handle.version, ROOT, b"child")
        fs.append_page(handle.version, child, b"leaf")
        fs.commit(handle.version)
        caps.append(cap)
    return fs, caps


def test_clean_system_passes(cluster):
    _populate(cluster)
    report = check_cluster(cluster)
    assert report.ok, report.errors
    assert report.files_checked == 2
    assert report.versions_checked >= 4


def test_clean_after_gc_has_no_leaks(cluster):
    fs, caps = _populate(cluster)
    # Make some garbage: a conflicted update.
    va = fs.create_version(caps[0])
    vb = fs.create_version(caps[0])
    fs.read_page(vb.version, PagePath.of(0))
    fs.write_page(va.version, PagePath.of(0), b"win")
    fs.write_page(vb.version, PagePath.of(0, 0), b"lose")
    fs.commit(va.version)
    with pytest.raises(CommitConflict):
        fs.commit(vb.version)
    cluster.gc().collect()
    report = check_cluster(cluster, gc_expected_clean=True)
    assert report.ok, report.errors
    assert report.leaked_blocks == []


def test_checker_consistent_after_crash(cluster2):
    """The paper's property, stated as an fsck invariant: a crash at any
    moment leaves a system that checks clean (modulo GC-fodder leaks)."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"x")
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, ROOT, b"dirty")
    fs0.store.flush()
    fs0.crash()
    report = check_cluster(cluster2)
    assert report.ok, report.errors


def test_checker_detects_broken_chain(cluster):
    fs, caps = _populate(cluster)
    entry = cluster.registry.file(caps[0].obj)
    # Vandalise: point the current version's commit reference at itself.
    block = fs._resolve_current(entry)
    page = fs.store.load(block, fresh=True)
    page.commit_ref = block
    fs.store.store_in_place(block, page)
    fs.store.flush()
    report = CheckReport()
    check_file(fs, entry, report)
    assert not report.ok
    assert any("cycle" in err for err in report.errors)


def test_checker_detects_dangling_reference(cluster):
    fs, caps = _populate(cluster)
    entry = cluster.registry.file(caps[0].obj)
    block = fs._resolve_current(entry)
    page = fs.store.load(block, fresh=True)
    from repro.core.page import PageRef
    from repro.core.flags import Flags

    page.refs[0] = PageRef(123456, Flags(c=True))
    fs.store.store_in_place(block, page)
    fs.store.flush()
    report = CheckReport()
    check_file(fs, entry, report)
    assert any("unreadable block" in err for err in report.errors)


def test_checker_counts_leaks_as_warnings(cluster):
    fs, caps = _populate(cluster)
    # Orphan a block deliberately.
    fs.store.blocks.allocate_write(b"orphan")
    report = check_cluster(cluster)
    assert report.ok  # a leak is a warning, not an error
    assert len(report.leaked_blocks) >= 1
    strict = check_cluster(cluster, gc_expected_clean=True)
    assert not strict.ok


def test_checker_with_superfiles(cluster):
    fs = cluster.fs()
    tree = SystemTree(fs)
    parent = fs.create_file(b"P")
    handle = fs.create_version(parent)
    sub = tree.create_subfile(handle.version, ROOT, initial_data=b"S")
    fs.commit(handle.version)
    update = tree.begin_super_update(parent)
    hs = tree.open_subfile(update, sub)
    fs.write_page(hs.version, ROOT, b"S2")
    tree.commit_super(update)
    report = check_cluster(cluster)
    assert report.ok, report.errors


def test_summary_line(cluster):
    _populate(cluster)
    report = check_cluster(cluster)
    text = report.summary()
    assert "fsck: clean" in text
    assert "2 files" in text


def test_dump_page_tree_renders_structure(cluster):
    fs, caps = _populate(cluster)
    entry = cluster.registry.file(caps[0].obj)
    block = fs._resolve_current(entry)
    text = dump_page_tree(fs, block)
    assert "<root>" in text
    assert "block=" in text
    assert "0/0" in text  # the leaf's path
    assert "[version page]" in text


def test_dump_page_tree_shows_holes(cluster):
    fs, caps = _populate(cluster)
    handle = fs.create_version(caps[0])
    fs.make_hole(handle.version, PagePath.of(0))
    entry = fs.registry.version(handle.version.obj)
    text = dump_page_tree(fs, entry.root_block)
    assert "<hole>" in text
    fs.abort(handle.version)


def test_dump_family_renders_chain(cluster):
    fs, caps = _populate(cluster)
    pending = fs.create_version(caps[0])
    text = dump_family(fs, caps[0])
    assert "committed block=" in text
    assert "<- current" in text
    assert "uncommitted version=" in text
    fs.abort(pending.version)
