"""The soak harness: determinism, fault scripts, end-to-end checking."""

import random

import pytest

from repro.sim.explore import (
    ExploreScheduler,
    SoakConfig,
    apply_fault,
    random_fault_script,
    run_soak,
)
from repro.sim.faults import FaultEvent
from repro.testbed import build_cluster


def test_run_random_is_deterministic():
    def worker(log, name, steps):
        for i in range(steps):
            log.append((name, i))
            yield

    traces = []
    for _ in range(2):
        log = []
        sched = ExploreScheduler()
        for name in ("a", "b", "c"):
            sched.spawn(name, worker(log, name, 5))
        sched.run_random(random.Random("fixed"))
        traces.append(log)
    assert traces[0] == traces[1]
    # And a different seed explores a different interleaving.
    log = []
    sched = ExploreScheduler()
    for name in ("a", "b", "c"):
        sched.spawn(name, worker(log, name, 5))
    sched.run_random(random.Random("other"))
    assert log != traces[0]


def test_fault_script_pairs_every_outage(soak_seed):
    for shards in (0, 4):
        config = SoakConfig(seed=soak_seed, shards=shards)
        script = random_fault_script(random.Random("faults"), config, horizon=300)
        downs = {"crash_server": 0, "half_down": 0, "pair_down": 0,
                 "partition": 0, "drops_on": 0}
        ups = {"restart_server": 0, "half_up": 0, "pair_up": 0,
               "heal": 0, "drops_off": 0}
        for event in script._pending:
            if event.action in downs:
                downs[event.action] += 1
            else:
                ups[event.action] += 1
        assert downs["crash_server"] <= 1  # never two file-server outages
        assert sum(downs.values()) == sum(ups.values())


def test_apply_fault_is_idempotent():
    cluster = build_cluster(servers=2, seed=3)
    for _ in range(2):  # crashing a crashed server is a no-op
        apply_fault(cluster, FaultEvent(0, "crash_server", (1,)))
    assert cluster.servers[1]._crashed
    for _ in range(2):
        apply_fault(cluster, FaultEvent(0, "restart_server", (1,)))
    assert not cluster.servers[1]._crashed
    for _ in range(2):
        apply_fault(cluster, FaultEvent(0, "half_down", ("a",)))
    for _ in range(2):
        apply_fault(cluster, FaultEvent(0, "half_up", ("a",)))
    assert not cluster.pair.a._crashed


def test_soak_passes_on_single_pair(soak_seed):
    report = run_soak(SoakConfig(seed=soak_seed, ops=60))
    assert report.ok, "\n".join(report.violations()) + "\n" + report.repro_line()
    assert report.commits > 0
    assert report.events_recorded > 0
    assert report.check.reads_checked > 0


def test_soak_passes_on_sharded_topology(soak_seed):
    report = run_soak(SoakConfig(seed=soak_seed, ops=60, shards=4))
    assert report.ok, "\n".join(report.violations()) + "\n" + report.repro_line()
    assert report.commits > 0


def test_soak_report_is_deterministic(soak_seed):
    config = SoakConfig(seed=soak_seed, ops=40)
    first = run_soak(config)
    second = run_soak(config)
    assert first.summary() == second.summary()
    assert first.steps == second.steps
    assert first.events_recorded == second.events_recorded
    assert [e.action for e in first.faults_fired] == [
        e.action for e in second.faults_fired
    ]


def test_soak_catches_blind_serialise_mutant(soak_seed):
    """The harness's reason to exist: with the serialisability test
    disabled, concurrent commits produce lost updates and the history
    checker must say so."""
    report = run_soak(SoakConfig(seed=soak_seed, ops=120, mutant=True))
    assert not report.ok
    kinds = {v.kind for v in report.check.violations}
    assert kinds & {"non-serializable-read", "stale-snapshot-read",
                    "durable-divergence"}
    assert "--mutant" in report.repro_line()


def test_repro_line_replays_config():
    line = run_soak(SoakConfig(seed=9, ops=30, shards=4, clients=2)).repro_line()
    assert "--seed 9" in line
    assert "--ops 30" in line
    assert "--shards 4" in line
    assert "--clients 2" in line
    assert line.startswith("PYTHONPATH=src python -m repro soak")


def test_soak_emits_observability_counters(soak_seed):
    from repro.obs import Recorder

    recorder = Recorder()
    run_soak(SoakConfig(seed=soak_seed, ops=40), recorder=recorder)
    counters = recorder.metrics.counters
    assert counters["soak.ops"].value == 40
    assert counters["soak.commits"].value > 0
    assert "soak.violations" not in counters
    assert recorder.tracer.spans_named("soak")


def _grouped_updates(client, cap, paths, tag=b"grp"):
    updates = []
    for i, path in enumerate(paths):
        update = client.begin(cap)
        update.write(path, tag + b"%d" % i)
        updates.append(update)
    return updates


def test_group_commit_aborts_atomically_under_whole_pair_outage():
    """A whole-pair outage mid-flush must leave the group all-or-nothing:
    no member commits, every member stays open, and a retry after the
    pair heals settles the whole batch."""
    from repro.client.api import FileClient
    from repro.core.pathname import PagePath
    from repro.errors import ReproError
    from repro.verify.history import HistoryRecorder, check_history

    history = HistoryRecorder()
    cluster = build_cluster(seed=31, history=history)
    client = FileClient(cluster.network, "host", cluster.service_port)
    cap = client.create_file(b"base")
    setup = client.begin(cap)
    paths = [setup.append_page(PagePath.ROOT, b"init") for _ in range(4)]
    setup.commit()
    client.prefer_server = client.ping()
    updates = _grouped_updates(client, cap, paths)
    before = [client.read(cap, path) for path in paths]

    apply_fault(cluster, FaultEvent(0, "pair_down", (0,)))
    with pytest.raises(ReproError):
        client.commit_group(updates)
    apply_fault(cluster, FaultEvent(0, "pair_up", (0,)))

    # Nothing committed: the current version still shows the old pages,
    # and every member is still open (uncommitted, not aborted).
    assert [client.read(cap, path) for path in paths] == before
    for update in updates:
        assert not update.done
        assert (
            cluster.registry.version(update.version.obj).status
            == "uncommitted"
        )
    # The same handles retry cleanly once storage is back.
    outcomes = client.commit_group(updates)
    assert all(v == "committed" for v in outcomes.values())
    assert [client.read(cap, path) for path in paths] == [
        b"grp%d" % i for i in range(4)
    ]
    result = check_history(history)
    assert result.ok, "\n".join(str(v) for v in result.violations)


def test_group_commit_aborts_atomically_when_one_shard_dies_mid_flush():
    """Sharded variant: the batch's pages straddle shards, and only the
    shard holding one member's pages goes down — the flush lands some
    shards before failing, yet no member may commit."""
    from repro.client.api import FileClient
    from repro.core.pathname import PagePath
    from repro.errors import ReproError
    from repro.testbed import build_sharded_cluster

    cluster = build_sharded_cluster(shards=4, seed=32, shard_capacity=16)
    client = FileClient(cluster.network, "host", cluster.service_port)
    cap = client.create_file(b"base")
    setup = client.begin(cap)
    paths = [setup.append_page(PagePath.ROOT, b"init") for _ in range(6)]
    setup.commit()
    client.prefer_server = client.ping()
    updates = _grouped_updates(client, cap, paths)
    # Down the shard that owns one member's version page: the batched
    # flush writes the other shards, then hits the dead one.
    shard_map = cluster.shards.map
    root = cluster.registry.version(updates[-1].version.obj).root_block
    victim = shard_map.shard_of(root)
    shards_touched = {
        shard_map.shard_of(
            cluster.registry.version(u.version.obj).root_block
        )
        for u in updates
    }
    assert len(shards_touched) > 1, "batch must straddle shards"

    apply_fault(cluster, FaultEvent(0, "pair_down", (victim,)))
    with pytest.raises(ReproError):
        client.commit_group(updates)
    apply_fault(cluster, FaultEvent(0, "pair_up", (victim,)))

    assert [client.read(cap, path) for path in paths] == [b"init"] * 6
    for update in updates:
        assert not update.done
    outcomes = client.commit_group(updates)
    assert all(v == "committed" for v in outcomes.values())
    assert [client.read(cap, path) for path in paths] == [
        b"grp%d" % i for i in range(6)
    ]
    from repro.tools.check import check_cluster

    fsck = check_cluster(cluster)
    assert fsck.ok, "\n".join(fsck.errors)


def test_soak_passes_with_group_commit(soak_seed):
    report = run_soak(SoakConfig(seed=soak_seed, ops=60, group_commit=True))
    assert report.ok, "\n".join(report.violations()) + "\n" + report.repro_line()
    assert report.commits > 0
    assert "--group-commit" in report.repro_line()


def test_soak_passes_with_group_commit_on_sharded_topology(soak_seed):
    report = run_soak(
        SoakConfig(seed=soak_seed, ops=60, shards=4, group_commit=True)
    )
    assert report.ok, "\n".join(report.violations()) + "\n" + report.repro_line()
    assert report.commits > 0


def test_driver_threads_history_into_service(rng):
    from repro.verify.history import HistoryRecorder, check_history
    from repro.workloads.driver import AmoebaAdapter, run_workload
    from repro.workloads.generators import uniform_workload

    cluster = build_cluster(seed=17)
    adapter = AmoebaAdapter(cluster.fs())
    workload = uniform_workload(rng, clients=2, txns_per_client=3, n_pages=8)
    history = HistoryRecorder()
    result = run_workload(adapter, workload, 8, cluster.network, history=history)
    assert result.committed > 0
    assert len(history.events) > 0
    assert any(e.kind == "commit" for e in history.events)
    assert check_history(history).ok
