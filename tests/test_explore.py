"""The soak harness: determinism, fault scripts, end-to-end checking."""

import random

import pytest

from repro.sim.explore import (
    ExploreScheduler,
    SoakConfig,
    apply_fault,
    random_fault_script,
    run_soak,
)
from repro.sim.faults import FaultEvent
from repro.testbed import build_cluster


def test_run_random_is_deterministic():
    def worker(log, name, steps):
        for i in range(steps):
            log.append((name, i))
            yield

    traces = []
    for _ in range(2):
        log = []
        sched = ExploreScheduler()
        for name in ("a", "b", "c"):
            sched.spawn(name, worker(log, name, 5))
        sched.run_random(random.Random("fixed"))
        traces.append(log)
    assert traces[0] == traces[1]
    # And a different seed explores a different interleaving.
    log = []
    sched = ExploreScheduler()
    for name in ("a", "b", "c"):
        sched.spawn(name, worker(log, name, 5))
    sched.run_random(random.Random("other"))
    assert log != traces[0]


def test_fault_script_pairs_every_outage(soak_seed):
    for shards in (0, 4):
        config = SoakConfig(seed=soak_seed, shards=shards)
        script = random_fault_script(random.Random("faults"), config, horizon=300)
        downs = {"crash_server": 0, "half_down": 0, "pair_down": 0,
                 "partition": 0, "drops_on": 0}
        ups = {"restart_server": 0, "half_up": 0, "pair_up": 0,
               "heal": 0, "drops_off": 0}
        for event in script._pending:
            if event.action in downs:
                downs[event.action] += 1
            else:
                ups[event.action] += 1
        assert downs["crash_server"] <= 1  # never two file-server outages
        assert sum(downs.values()) == sum(ups.values())


def test_apply_fault_is_idempotent():
    cluster = build_cluster(servers=2, seed=3)
    for _ in range(2):  # crashing a crashed server is a no-op
        apply_fault(cluster, FaultEvent(0, "crash_server", (1,)))
    assert cluster.servers[1]._crashed
    for _ in range(2):
        apply_fault(cluster, FaultEvent(0, "restart_server", (1,)))
    assert not cluster.servers[1]._crashed
    for _ in range(2):
        apply_fault(cluster, FaultEvent(0, "half_down", ("a",)))
    for _ in range(2):
        apply_fault(cluster, FaultEvent(0, "half_up", ("a",)))
    assert not cluster.pair.a._crashed


def test_soak_passes_on_single_pair(soak_seed):
    report = run_soak(SoakConfig(seed=soak_seed, ops=60))
    assert report.ok, "\n".join(report.violations()) + "\n" + report.repro_line()
    assert report.commits > 0
    assert report.events_recorded > 0
    assert report.check.reads_checked > 0


def test_soak_passes_on_sharded_topology(soak_seed):
    report = run_soak(SoakConfig(seed=soak_seed, ops=60, shards=4))
    assert report.ok, "\n".join(report.violations()) + "\n" + report.repro_line()
    assert report.commits > 0


def test_soak_report_is_deterministic(soak_seed):
    config = SoakConfig(seed=soak_seed, ops=40)
    first = run_soak(config)
    second = run_soak(config)
    assert first.summary() == second.summary()
    assert first.steps == second.steps
    assert first.events_recorded == second.events_recorded
    assert [e.action for e in first.faults_fired] == [
        e.action for e in second.faults_fired
    ]


def test_soak_catches_blind_serialise_mutant(soak_seed):
    """The harness's reason to exist: with the serialisability test
    disabled, concurrent commits produce lost updates and the history
    checker must say so."""
    report = run_soak(SoakConfig(seed=soak_seed, ops=120, mutant=True))
    assert not report.ok
    kinds = {v.kind for v in report.check.violations}
    assert kinds & {"non-serializable-read", "stale-snapshot-read",
                    "durable-divergence"}
    assert "--mutant" in report.repro_line()


def test_repro_line_replays_config():
    line = run_soak(SoakConfig(seed=9, ops=30, shards=4, clients=2)).repro_line()
    assert "--seed 9" in line
    assert "--ops 30" in line
    assert "--shards 4" in line
    assert "--clients 2" in line
    assert line.startswith("PYTHONPATH=src python -m repro soak")


def test_soak_emits_observability_counters(soak_seed):
    from repro.obs import Recorder

    recorder = Recorder()
    run_soak(SoakConfig(seed=soak_seed, ops=40), recorder=recorder)
    counters = recorder.metrics.counters
    assert counters["soak.ops"].value == 40
    assert counters["soak.commits"].value > 0
    assert "soak.violations" not in counters
    assert recorder.tracer.spans_named("soak")


def test_driver_threads_history_into_service(rng):
    from repro.verify.history import HistoryRecorder, check_history
    from repro.workloads.driver import AmoebaAdapter, run_workload
    from repro.workloads.generators import uniform_workload

    cluster = build_cluster(seed=17)
    adapter = AmoebaAdapter(cluster.fs())
    workload = uniform_workload(rng, clients=2, txns_per_client=3, n_pages=8)
    history = HistoryRecorder()
    result = run_workload(adapter, workload, 8, cluster.network, history=history)
    assert result.committed > 0
    assert len(history.events) > 0
    assert any(e.kind == "commit" for e in history.events)
    assert check_history(history).ok
