"""Fault-injection primitives."""

from repro.sim.faults import CrashSchedule, DropPolicy, FaultPlan


def test_crash_schedule_fires_once_at_threshold():
    crash = CrashSchedule(after_ops=3)
    assert [crash.tick() for _ in range(5)] == [False, False, True, False, False]
    assert crash.fired


def test_crash_schedule_never_fires_by_default():
    crash = CrashSchedule()
    assert not any(crash.tick() for _ in range(100))
    assert crash.count == 100  # ops are still counted without a threshold


def test_crash_schedule_keeps_counting_after_firing():
    """``count`` is the true number of operations seen; it must not freeze
    once the crash has fired (metrics are derived from it)."""
    crash = CrashSchedule(after_ops=2)
    for _ in range(5):
        crash.tick()
    assert crash.fired
    assert crash.count == 5


def test_crash_schedule_reset_clears_count():
    crash = CrashSchedule(after_ops=2)
    crash.tick()
    crash.tick()
    crash.reset()
    assert crash.count == 0
    assert not crash.fired


def test_crash_schedule_reset():
    crash = CrashSchedule(after_ops=1)
    crash.tick()
    crash.reset()
    assert not crash.fired
    assert crash.tick()


def test_drop_every_kth():
    policy = DropPolicy(drop_every=3)
    outcomes = [policy.should_drop() for _ in range(9)]
    assert outcomes == [False, False, True] * 3
    assert policy.dropped == 3


def test_drop_specific_sequence_numbers():
    policy = DropPolicy(drop_nth=frozenset({2, 5}))
    outcomes = [policy.should_drop() for _ in range(6)]
    assert outcomes == [False, True, False, False, True, False]


def test_drop_policy_reset():
    policy = DropPolicy(drop_every=1)
    policy.should_drop()
    policy.reset()
    assert policy.dropped == 0


def test_fault_plan_defaults_and_reset():
    plan = FaultPlan()
    schedule = plan.crash_schedule("serverA")
    assert not schedule.tick()  # never-firing default
    plan.crashes["serverB"] = CrashSchedule(after_ops=1)
    plan.crashes["serverB"].tick()
    plan.reset()
    assert not plan.crashes["serverB"].fired
