"""The networking CLI, end to end across real process boundaries:
``repro serve`` in one process, ``repro connect`` in another, plus the
``--smoke`` workload, ``--data-dir`` durability across ``kill -9``, and
the ``repro stats`` net section."""

import os
import signal
import subprocess
import sys
import time

import pytest


def _run(*args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _spawn_server(*args):
    """Start ``repro serve`` and wait for its REPRO_SPEC line; returns the
    process, the spec, and every startup line printed before it."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    spec = None
    startup = []
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        startup.append(line)
        if line.startswith("REPRO_SPEC="):
            spec = line[len("REPRO_SPEC=") :].strip()
            break
    assert spec, "server never printed its REPRO_SPEC line:\n" + "".join(startup)
    return proc, spec, startup


def test_serve_then_connect_across_processes():
    """The real deployment shape: a daemon process and a client process
    that share nothing but the spec string and localhost TCP."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--servers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        spec = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            if line.startswith("REPRO_SPEC="):
                spec = line[len("REPRO_SPEC=") :].strip()
                break
        assert spec, "server never printed its REPRO_SPEC line"
        result = _run("connect", spec)
        assert result.returncode == 0, result.stderr
        assert "connect: ok" in result.stdout
        assert "read back: b'committed over TCP'" in result.stdout
    finally:
        server.terminate()
        server.wait(timeout=30)


def test_serve_smoke_commits_and_fails_over():
    """The CI gate: a history-checked workload over sockets that loses a
    stable-pair daemon mid-run."""
    result = _run("serve", "--smoke")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "killed stable-pair daemon" in result.stdout
    assert "smoke: ok" in result.stdout
    assert "net.tcp.failovers" in result.stdout


def test_serve_data_dir_survives_sigkill(tmp_path):
    """The durability acceptance test: commit a file over TCP, ``kill -9``
    the server, restart it on the same data dir alone, and read the data
    back with the capability minted before the crash.  Works because block
    writes journal to disk before acking and the serve loop checkpoints
    the file table; the same ``--seed`` re-derives the paper ports so the
    old capability still names the service."""
    from repro.client.api import FileClient
    from repro.core.pathname import PagePath
    from repro.net import connect

    data_dir = str(tmp_path / "store")
    server, spec, _ = _spawn_server(
        "--servers", "1", "--seed", "5", "--data-dir", data_dir
    )
    table = os.path.join(data_dir, "TABLE")
    try:
        network, service_port = connect(spec)
        client = FileClient(network, "durable-client", service_port)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not os.path.exists(table):
            time.sleep(0.05)
        assert os.path.exists(table), "serve loop never checkpointed the table"
        before = os.stat(table).st_mtime_ns

        cap = client.create_file(b"seed page")
        client.transact(cap, lambda u: u.write(PagePath.ROOT, b"survives kill -9"))
        assert client.read(cap) == b"survives kill -9"

        # Wait for the registry checkpoint that includes the commit: the
        # serve loop rewrites TABLE whenever the serialized table changed.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and os.stat(table).st_mtime_ns == before:
            time.sleep(0.05)
        assert os.stat(table).st_mtime_ns != before, "commit never checkpointed"
    finally:
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)

    # Restart from the data dir alone (same seed → same paper ports).
    server, spec2, startup = _spawn_server(
        "--servers", "1", "--seed", "5", "--data-dir", data_dir
    )
    try:
        assert any("recovered 1 file(s)" in line for line in startup), (
            "restart did not report the recovered file:\n" + "".join(startup)
        )
        network2, service_port2 = connect(spec2)
        client2 = FileClient(network2, "durable-client-2", service_port2)
        assert service_port2 == service_port  # deterministic port derivation
        # The pre-crash capability validates against the restored registry
        # and reads the committed bytes straight off the journal-replayed
        # page store.
        assert client2.read(cap) == b"survives kill -9"
        assert len(client2.history(cap)) >= 1
    finally:
        server.terminate()
        server.wait(timeout=30)


def test_connect_usage_errors():
    result = _run("connect")
    assert result.returncode == 2
    assert "usage" in result.stdout

    result = _run("connect", "not-a-spec")
    assert result.returncode != 0


def test_stats_renders_net_section():
    result = _run("stats")
    assert result.returncode == 0, result.stderr
    assert "net (simulated vs tcp)" in result.stdout
    assert "sim net.messages" in result.stdout
    assert "net.tcp.requests" in result.stdout


def test_serve_rejects_unknown_flag():
    result = _run("serve", "--bogus")
    assert result.returncode == 2
