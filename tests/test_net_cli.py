"""The networking CLI, end to end across real process boundaries:
``repro serve`` in one process, ``repro connect`` in another, plus the
``--smoke`` workload and the ``repro stats`` net section."""

import subprocess
import sys
import time

import pytest


def _run(*args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_serve_then_connect_across_processes():
    """The real deployment shape: a daemon process and a client process
    that share nothing but the spec string and localhost TCP."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--servers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        spec = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            if line.startswith("REPRO_SPEC="):
                spec = line[len("REPRO_SPEC=") :].strip()
                break
        assert spec, "server never printed its REPRO_SPEC line"
        result = _run("connect", spec)
        assert result.returncode == 0, result.stderr
        assert "connect: ok" in result.stdout
        assert "read back: b'committed over TCP'" in result.stdout
    finally:
        server.terminate()
        server.wait(timeout=30)


def test_serve_smoke_commits_and_fails_over():
    """The CI gate: a history-checked workload over sockets that loses a
    stable-pair daemon mid-run."""
    result = _run("serve", "--smoke")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "killed stable-pair daemon" in result.stdout
    assert "smoke: ok" in result.stdout
    assert "net.tcp.failovers" in result.stdout


def test_connect_usage_errors():
    result = _run("connect")
    assert result.returncode == 2
    assert "usage" in result.stdout

    result = _run("connect", "not-a-spec")
    assert result.returncode != 0


def test_stats_renders_net_section():
    result = _run("stats")
    assert result.returncode == 0, result.stderr
    assert "net (simulated vs tcp)" in result.stdout
    assert "sim net.messages" in result.stdout
    assert "net.tcp.requests" in result.stdout


def test_serve_rejects_unknown_flag():
    result = _run("serve", "--bogus")
    assert result.returncode == 2
