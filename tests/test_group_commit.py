"""The group-commit pipeline: one critical section, one batched flush.

These tests drive ``FileService.commit_group`` both directly and through
the client API, and pin down the contract the benchmarks rely on: a batch
of N non-conflicting ready updates settles with one test-and-set per
file and one flush for the whole group, conflicting members are removed
exactly as the sequential path would remove them, and the published
commit-reference chain is indistinguishable from N sequential commits.
"""

import pytest

from repro.client.api import FileClient
from repro.core.pathname import PagePath
from repro.errors import NotManagingServer, VersionCommitted
from repro.obs import Recorder
from repro.testbed import build_cluster
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT


def _file_with_pages(fs, n_pages, payload=b"init"):
    cap = fs.create_file(b"base")
    handle = fs.create_version(cap)
    paths = [fs.append_page(handle.version, ROOT, payload) for _ in range(n_pages)]
    fs.commit(handle.version)
    return cap, paths


def _ready_updates(fs, cap, paths, tag=b"new"):
    """One ready-to-commit update per path, each writing only its page."""
    handles = []
    for i, path in enumerate(paths):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, path, tag + b"%d" % i)
        handles.append(handle)
    return handles


def test_group_commit_batches_non_conflicting_updates():
    cluster = build_cluster(seed=11)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 8)
    handles = _ready_updates(fs, cap, paths)
    outcomes = fs.commit_group([h.version for h in handles])
    assert all(v == "committed" for v in outcomes.values())
    assert len(outcomes) == 8
    current = fs.current_version(cap)
    for i, path in enumerate(paths):
        assert fs.read_page(current, path) == b"new%d" % i
    assert fs.metrics.group_commits == 1
    assert fs.metrics.group_committed == 8
    assert fs.metrics.commits == 9  # setup commit + 8 members


def test_group_commit_publishes_the_chain_in_member_order():
    cluster = build_cluster(seed=12)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 3)
    handles = _ready_updates(fs, cap, paths)
    fs.commit_group([h.version for h in handles])
    # committed_versions walks the commit-reference chain oldest → current:
    # the group's members must appear in exactly the order they were given.
    chain = [v.obj for v in fs.committed_versions(cap)]
    member_objs = [h.version.obj for h in handles]
    assert chain[-3:] == member_objs
    assert chain[-1] == fs.current_version(cap).obj


def test_group_commit_conflicting_member_is_removed():
    cluster = build_cluster(seed=13)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 2)
    winner = fs.create_version(cap)
    fs.write_page(winner.version, paths[0], b"winner")
    loser = fs.create_version(cap)
    fs.read_page(loser.version, paths[0])  # reads what winner overwrites
    fs.write_page(loser.version, paths[1], b"loser")
    outcomes = fs.commit_group([winner.version, loser.version])
    assert outcomes[winner.version.obj] == "committed"
    assert outcomes[loser.version.obj].startswith("conflict:")
    assert fs.registry.version(loser.version.obj).status == "aborted"
    current = fs.current_version(cap)
    assert fs.read_page(current, paths[0]) == b"winner"
    assert fs.read_page(current, paths[1]) == b"init"
    assert fs.metrics.conflicts == 1


def test_group_commit_catches_up_with_external_commits():
    """Members whose base went stale serialise through the externally
    committed chain first, then re-graft their own writes."""
    cluster = build_cluster(seed=14)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 4)
    handles = _ready_updates(fs, cap, paths[:3])
    # An outside update commits after the group members were created.
    external = fs.create_version(cap)
    fs.write_page(external.version, paths[3], b"external")
    fs.commit(external.version)
    outcomes = fs.commit_group([h.version for h in handles])
    assert all(v == "committed" for v in outcomes.values())
    current = fs.current_version(cap)
    for i in range(3):
        assert fs.read_page(current, paths[i]) == b"new%d" % i
    assert fs.read_page(current, paths[3]) == b"external"


def test_group_commit_spans_multiple_files():
    cluster = build_cluster(seed=15)
    fs = cluster.fs()
    cap_a, paths_a = _file_with_pages(fs, 2)
    cap_b, paths_b = _file_with_pages(fs, 2)
    handles = _ready_updates(fs, cap_a, paths_a) + _ready_updates(
        fs, cap_b, paths_b
    )
    outcomes = fs.commit_group([h.version for h in handles])
    assert all(v == "committed" for v in outcomes.values())
    for cap, paths in ((cap_a, paths_a), (cap_b, paths_b)):
        current = fs.current_version(cap)
        for i, path in enumerate(paths):
            assert fs.read_page(current, path) == b"new%d" % i
    assert fs.metrics.group_committed == 4


def test_group_commit_deduplicates_and_validates_members():
    cluster = build_cluster(seed=16)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 1)
    assert fs.commit_group([]) == {}
    handle = fs.create_version(cap)
    fs.write_page(handle.version, paths[0], b"once")
    outcomes = fs.commit_group([handle.version, handle.version])
    assert outcomes == {handle.version.obj: "committed"}
    with pytest.raises(VersionCommitted):
        fs.commit_group([handle.version])


def test_group_commit_refuses_other_servers_updates():
    """The NotManagingServer gate covers the grouped path too: a replica
    must not publish versions whose pages sit in another live server's
    write buffer."""
    cluster = build_cluster(servers=2, seed=17)
    fs0, fs1 = cluster.servers
    cap, paths = _file_with_pages(fs0, 1)
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, paths[0], b"mine")
    with pytest.raises(NotManagingServer):
        fs1.commit_group([handle.version])
    # No harm done: the managing server still settles it.
    assert fs0.commit_group([handle.version]) == {
        handle.version.obj: "committed"
    }


def test_group_commit_history_is_serializable():
    history = HistoryRecorder()
    cluster = build_cluster(seed=18, history=history)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 4)
    handles = _ready_updates(fs, cap, paths)
    fs.commit_group([h.version for h in handles])
    result = check_history(history)
    assert result.ok, "\n".join(str(v) for v in result.violations)


def test_group_commit_emits_counters_and_spans():
    recorder = Recorder()
    cluster = build_cluster(seed=19, recorder=recorder)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 4)
    handles = _ready_updates(fs, cap, paths)
    fs.commit_group([h.version for h in handles])
    counters = recorder.metrics.counters
    assert counters["commit.group.batches"].value == 1
    assert counters["commit.group.members"].value == 4
    assert counters["commit.group.committed"].value == 4
    assert recorder.tracer.spans_named("commit.group")


def test_client_commit_group_pins_one_server():
    cluster = build_cluster(servers=2, seed=20)
    client = FileClient(cluster.network, "host", cluster.service_port)
    cap = client.create_file(b"base")
    setup = client.begin(cap)
    paths = [setup.append_page(ROOT, b"init") for _ in range(4)]
    setup.commit()
    client.prefer_server = client.ping()
    updates = []
    for i, path in enumerate(paths):
        update = client.begin(cap)
        update.write(path, b"grp%d" % i)
        updates.append(update)
    outcomes = client.commit_group(updates)
    assert all(v == "committed" for v in outcomes.values())
    assert all(update.done for update in updates)
    for i, path in enumerate(paths):
        assert client.read(cap, path) == b"grp%d" % i


def test_snapshot_read_serves_committed_state_without_resolution():
    cluster = build_cluster(seed=21)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 2)
    # The setup commit primed the hint: the very first snapshot read is
    # already a fast one.
    assert fs.snapshot_read(cap, paths[0]) == b"init"
    assert fs.metrics.snapshot_fast == 1
    handle = fs.create_version(cap)
    fs.write_page(handle.version, paths[0], b"updated")
    fs.commit(handle.version)
    assert fs.snapshot_read(cap, paths[0]) == b"updated"
    assert fs.metrics.snapshot_reads == 2
    assert fs.metrics.snapshot_fast == 2


def test_snapshot_read_may_lag_commits_made_elsewhere():
    """A stale hint serves the previous committed version — still a
    committed snapshot, repaired by the next resolution on this server."""
    history = HistoryRecorder()
    cluster = build_cluster(servers=2, seed=22, history=history)
    fs0, fs1 = cluster.servers
    cap, paths = _file_with_pages(fs0, 1)
    assert fs0.snapshot_read(cap, paths[0]) == b"init"
    handle = fs1.create_version(cap)
    fs1.write_page(handle.version, paths[0], b"via-fs1")
    fs1.commit(handle.version)
    # fs0's hint (and cached page) predate fs1's commit: it serves the
    # older committed version, tagged with that version's identity.
    assert fs0.snapshot_read(cap, paths[0]) == b"init"
    fs0.current_version(cap)  # resolution repairs the hint
    assert fs0.snapshot_read(cap, paths[0]) == b"via-fs1"
    result = check_history(history)
    assert result.ok, "\n".join(str(v) for v in result.violations)


def test_snapshot_read_survives_a_server_restart():
    cluster = build_cluster(seed=23)
    fs = cluster.fs()
    cap, paths = _file_with_pages(fs, 1)
    fs.crash()
    fs.restart()
    # Hints died with the crash; the read falls back to resolution and
    # rebuilds them.
    assert fs.snapshot_read(cap, paths[0]) == b"init"
    assert fs.metrics.snapshot_fast == 0
    assert fs.snapshot_read(cap, paths[0]) == b"init"
    assert fs.metrics.snapshot_fast == 1
