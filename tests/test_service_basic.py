"""The file service: files, versions, page I/O, commit, abort, rights."""

import pytest

from repro.capability import Capability, RIGHT_READ
from repro.errors import (
    BadCapability,
    BadPathName,
    HoleReference,
    InsufficientRights,
    NoSuchFile,
    PageTooLarge,
    VersionAborted,
    VersionCommitted,
)
from repro.core.page import PAGE_BODY_SIZE
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


def test_create_file_and_read_current(fs):
    cap = fs.create_file(b"genesis")
    current = fs.current_version(cap)
    assert fs.read_page(current, ROOT) == b"genesis"


def test_version_behaves_like_a_copy(fs):
    cap = fs.create_file(b"original")
    handle = fs.create_version(cap)
    assert fs.read_page(handle.version, ROOT) == b"original"
    fs.write_page(handle.version, ROOT, b"changed")
    # The current version is unaffected until commit.
    assert fs.read_page(fs.current_version(cap), ROOT) == b"original"
    fs.commit(handle.version)
    assert fs.read_page(fs.current_version(cap), ROOT) == b"changed"


def test_committed_versions_are_immutable_snapshots(fs):
    cap = fs.create_file(b"v1")
    old = fs.current_version(cap)
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"v2")
    fs.commit(handle.version)
    assert fs.read_page(old, ROOT) == b"v1"
    with pytest.raises(VersionCommitted):
        fs.write_page(handle.version, ROOT, b"v3")


def test_abort_discards_changes(fs):
    cap = fs.create_file(b"keep")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"discard")
    fs.abort(handle.version)
    assert fs.read_page(fs.current_version(cap), ROOT) == b"keep"
    with pytest.raises(VersionAborted):
        fs.read_page(handle.version, ROOT)


def test_commit_after_abort_rejected(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.abort(handle.version)
    with pytest.raises(VersionAborted):
        fs.commit(handle.version)


def test_double_commit_rejected(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.commit(handle.version)
    with pytest.raises(VersionCommitted):
        fs.commit(handle.version)


def test_deep_tree_navigation(fs):
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    child = fs.append_page(handle.version, ROOT, b"level1")
    grandchild = fs.append_page(handle.version, child, b"level2")
    fs.commit(handle.version)
    current = fs.current_version(cap)
    assert fs.read_page(current, child) == b"level1"
    assert fs.read_page(current, grandchild) == b"level2"
    assert grandchild == PagePath.of(0, 0)


def test_bad_path_errors(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    with pytest.raises(BadPathName):
        fs.read_page(handle.version, PagePath.of(0))
    fs.append_page(handle.version, ROOT, b"c")
    with pytest.raises(BadPathName):
        fs.read_page(handle.version, PagePath.of(5))


def test_hole_navigation_raises(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    path = fs.append_page(handle.version, ROOT, b"c")
    fs.make_hole(handle.version, path)
    with pytest.raises(HoleReference):
        fs.read_page(handle.version, path)


def test_page_size_limit_enforced(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"y" * PAGE_BODY_SIZE)
    with pytest.raises(PageTooLarge):
        fs.write_page(handle.version, ROOT, b"y" * (PAGE_BODY_SIZE + 1))


def test_page_structure_reports_holes(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    a = fs.append_page(handle.version, ROOT, b"a")
    fs.append_page(handle.version, ROOT, b"b")
    fs.make_hole(handle.version, a)
    assert fs.page_structure(handle.version, ROOT) == [0, 1]


def test_capability_forgery_rejected(fs):
    cap = fs.create_file(b"x")
    forged = Capability(cap.port, cap.obj, cap.rights, cap.check ^ 1)
    with pytest.raises(BadCapability):
        fs.create_version(forged)


def test_rights_enforced(fs):
    cap = fs.create_file(b"x")
    read_only = fs.issuer.restrict(cap, RIGHT_READ)
    with pytest.raises(InsufficientRights):
        fs.create_version(read_only)
    assert fs.current_version(read_only) is not None


def test_delete_file(fs):
    cap = fs.create_file(b"x")
    fs.delete_file(cap)
    with pytest.raises((NoSuchFile, BadCapability)):
        fs.current_version(cap)


def test_family_tree_shape(fs):
    cap = fs.create_file(b"v1")
    h1 = fs.create_version(cap)
    fs.write_page(h1.version, ROOT, b"v2")
    fs.commit(h1.version)
    pending = fs.create_version(cap)
    tree = fs.family_tree(cap)
    assert len(tree["committed"]) == 2
    assert tree["current"] == tree["committed"][-1]
    assert len(tree["uncommitted"]) == 1
    assert tree["uncommitted"][0]["based_on"] == tree["current"]
    fs.abort(pending.version)


def test_committed_versions_listing(fs):
    cap = fs.create_file(b"r1")
    for n in range(2, 5):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"r%d" % n)
        fs.commit(handle.version)
    versions = fs.committed_versions(cap)
    assert [fs.read_page(v, ROOT) for v in versions] == [b"r1", b"r2", b"r3", b"r4"]


def test_entry_block_advances_lazily(fs, cluster):
    cap = fs.create_file(b"v1")
    entry = cluster.registry.file(cap.obj)
    first_block = entry.entry_block
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"v2")
    fs.commit(handle.version)
    assert entry.entry_block != first_block  # advanced at commit
    # Resolution from a stale entry still works: reset it artificially.
    entry.entry_block = first_block
    assert fs.read_page(fs.current_version(cap), ROOT) == b"v2"
    assert entry.entry_block != first_block  # advanced again


def test_one_page_file_without_soft_lock(fs):
    """The Bauer-principle path for compiler temporaries (claim C6)."""
    cap = fs.create_file(b"")
    handle = fs.create_version(cap, set_soft_lock=False)
    fs.write_page(handle.version, ROOT, b"object code")
    fs.commit(handle.version)
    assert fs.read_page(fs.current_version(cap), ROOT) == b"object code"
    # No soft lock was planted on the base version.
    base = fs.family_tree(cap)["committed"][0]
    assert fs.store.load(base, fresh=True).top_lock == 0
