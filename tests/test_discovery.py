"""The discovery / placement service: registry, heartbeats, epoch-CAS
publication, and client bootstrap — over the simulated network and over
real TCP daemons."""

from __future__ import annotations

import pytest

from repro.block.sharding import PlacementMap
from repro.capability import new_port
from repro.core.pathname import PagePath
from repro.errors import PlacementStale, UnknownObject
from repro.net.discovery import (
    DEFAULT_HEARTBEAT_TTL,
    DiscoveryClient,
    attach_discovery,
    heartbeat_script,
)
from repro.sim.network import Network
from repro.testbed import build_sharded_cluster

DISC_PORT = 0xD15C


def _sim_pair():
    network = Network()
    server, _ = attach_discovery(network, DISC_PORT, service_port=0xF00D)
    client = DiscoveryClient(network, "tester", DISC_PORT)
    return network, server, client


def test_register_heartbeat_and_ttl_liveness():
    network, server, client = _sim_pair()
    client.register("fs0", kind="fs", port=0xF00D)
    client.register("shard0A", kind="stable", port=0xB10C)
    directory = client.directory()
    assert [e["name"] for e in directory] == ["fs0", "shard0A"]
    assert all(e["alive"] for e in directory)

    # Run the clock past the TTL: both go dead, a heartbeat revives one.
    network.clock.advance(DEFAULT_HEARTBEAT_TTL + 1)
    directory = {e["name"]: e for e in client.directory()}
    assert not directory["fs0"]["alive"]
    assert not directory["shard0A"]["alive"]
    assert client.heartbeat("fs0") is True
    directory = {e["name"]: e for e in client.directory()}
    assert directory["fs0"]["alive"]
    assert not directory["shard0A"]["alive"]

    # Deregistration removes the entry outright.
    assert client.deregister("shard0A") is True
    assert client.deregister("shard0A") is False
    assert [e["name"] for e in client.directory()] == ["fs0"]


def test_heartbeat_script_reregisters_forgotten_daemons():
    network, server, client = _sim_pair()
    registrations = {
        "fs0": {"kind": "fs", "port": 0xF00D},
        "shard0A": {"kind": "stable", "port": 0xB10C},
    }
    for name, info in registrations.items():
        client.register(name, **info)
    # A discovery restart loses the soft-state registry.
    server._entries.clear()
    assert client.heartbeat("fs0") is False
    # One pass of the heartbeat task rebuilds it, kinds and ports intact.
    task = heartbeat_script(client, registrations, interval=1, beats=1)
    for _ in task:
        pass
    directory = {e["name"]: e for e in client.directory()}
    assert set(directory) == {"fs0", "shard0A"}
    assert directory["shard0A"]["kind"] == "stable"
    assert directory["shard0A"]["port"] == 0xB10C


def test_publish_placement_is_epoch_cas():
    network, server, client = _sim_pair()
    ports = [0x100, 0x200]
    epoch1 = PlacementMap.initial(ports, stride=64)
    epoch2 = epoch1.moved(0, 0x300)

    # Nothing published yet.
    assert client.placement() is None
    # Out-of-order publish refused: the registry holds nothing (epoch 0).
    with pytest.raises(PlacementStale):
        client.publish_placement(epoch2, expect_epoch=1)
    assert client.publish_placement(epoch1, expect_epoch=0) == 1
    # Re-publishing the same epoch is a stale publisher.
    with pytest.raises(PlacementStale):
        client.publish_placement(epoch1, expect_epoch=0)
    # A skip (publishing epoch 3 over epoch 1) is refused even with the
    # right expectation — the map must advance one bump at a time.
    epoch3 = epoch2.moved(1, 0x400)
    with pytest.raises(PlacementStale):
        client.publish_placement(epoch3, expect_epoch=1)
    assert client.publish_placement(epoch2, expect_epoch=1) == 2
    assert client.placement().epoch == 2
    # The losing CAS never rolled anything back.
    assert client.placement() == epoch2


def test_bootstrap_payload():
    network, server, client = _sim_pair()
    client.register("fs0", kind="fs", port=0xF00D)
    placement = PlacementMap.initial([0x100], stride=64)
    client.publish_placement(placement, expect_epoch=0)
    payload = client.bootstrap()
    assert payload["service_port"] == 0xF00D
    assert payload["placement"] == placement
    assert [e["name"] for e in payload["daemons"]] == ["fs0"]

    # A registry with no file service recorded refuses to bootstrap.
    bare_net = Network()
    attach_discovery(bare_net, DISC_PORT)
    bare = DiscoveryClient(bare_net, "tester", DISC_PORT)
    with pytest.raises(UnknownObject):
        bare.bootstrap()


def test_sharded_testbed_attaches_and_republishes():
    """``build_sharded_cluster(discovery=True)``: every daemon
    registered, the map published, and a live migration republishes the
    bumped map and swaps the pair halves in the directory."""
    cluster = build_sharded_cluster(shards=2, servers=2, seed=3, discovery=True)
    disc = cluster.discovery
    service = cluster.shards
    client = DiscoveryClient(cluster.network, "probe", cluster.discovery_port)

    names = {e["name"] for e in client.directory()}
    assert {"fs0", "fs1", "shard0A", "shard0B", "shard1A", "shard1B"} <= names
    assert client.placement().epoch == 1
    assert client.bootstrap()["service_port"] == cluster.service_port

    old_halves = {h.name for h in service.pairs[0].halves()}
    report = service.migrate(0, new_port(cluster.rng))
    assert report.epoch == 2
    # The publisher hook pushed the new map and updated the directory.
    assert client.placement().epoch == 2
    names = {e["name"] for e in client.directory()}
    assert not (old_halves & names)
    new_halves = {h.name for h in service.pairs[0].halves()}
    assert new_halves <= names


def test_tcp_cluster_discovery_and_bootstrap_join():
    """The whole story over real sockets: the spec's ``discovery`` entry
    alone is enough to join, commit, and read back — service port,
    placement map (wire-encoded), and daemon addresses all come from the
    registry."""
    from repro.client.api import FileClient
    from repro.net import bootstrap, build_tcp_cluster

    cluster = build_tcp_cluster(servers=2, shards=2, seed=7, discovery=True)
    try:
        spec = cluster.spec()
        assert "discovery:" in spec
        disc_entry = next(
            e for e in spec.split(";") if e.startswith("discovery:")
        )
        network, payload = bootstrap(disc_entry)
        assert payload["service_port"] == cluster.service_port
        assert payload["placement"].epoch == 1
        assert payload["placement"] == cluster.shards.placement
        kinds = {e["kind"] for e in payload["daemons"]}
        assert kinds == {"fs", "stable"}
        assert all(
            e["host"] is not None and e["tcp_port"] is not None
            for e in payload["daemons"]
        )

        client = FileClient.from_discovery(disc_entry, node="joiner")
        cap = client.create_file(b"bootstrapped")
        client.transact(
            cap, lambda u: u.write(PagePath.ROOT, b"over tcp via discovery")
        )
        assert client.read(cap) == b"over tcp via discovery"
    finally:
        cluster.stop()


def test_tcp_bootstrap_requires_discovery_entry():
    from repro.net import bootstrap

    with pytest.raises(ValueError):
        bootstrap("service:abc=127.0.0.1:1")
    with pytest.raises(ValueError):
        bootstrap("discovery:abc=")
