"""The page store: caching, deferred writes, the commit test-and-set."""

import pytest

from repro.block.stable import StableClient, StablePair
from repro.core.page import NIL, Page
from repro.core.store import PageStore
from repro.sim.network import Network


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def pair(net, disk_backend):
    # Both media: simulated memory and the durable file-backed disk.
    return StablePair(net, 0x600, capacity=256, block_size=33000, **disk_backend())


@pytest.fixture
def store(net, pair):
    return PageStore(StableClient(net, "fs", 0x600, account=1))


def test_store_new_and_load(store):
    block = store.store_new(Page(data=b"hello"))
    assert store.load(block).data == b"hello"


def test_deferred_write_not_on_disk_until_flush(store, pair):
    block = store.store_new(Page(data=b"deferred"))
    assert not pair.disk_a.holds(block)
    assert store.dirty_count == 1
    flushed = store.flush()
    assert flushed == 1
    assert pair.disk_a.holds(block)
    assert Page.from_bytes(pair.disk_a.read(block)).data == b"deferred"


def test_dirty_pages_served_from_memory(store):
    block = store.store_new(Page(data=b"v1"))
    page = store.load(block)
    page.data = b"v2"
    store.store_in_place(block, page)
    assert store.load(block).data == b"v2"
    assert store.load(block, fresh=True).data == b"v2"  # dirty wins


def test_write_through_mode(net, pair):
    eager = PageStore(
        StableClient(net, "fs2", 0x600, account=1), deferred_writes=False
    )
    block = eager.store_new(Page(data=b"now"))
    assert pair.disk_a.holds(block)
    assert eager.dirty_count == 0


def test_cache_avoids_disk_reads(store, pair):
    block = store.store_new(Page(data=b"cached"))
    store.flush()
    store.cache.clear()
    reads_before = pair.disk_a.stats.reads + pair.disk_b.stats.reads
    store.load(block)
    store.load(block)
    store.load(block)
    reads_after = pair.disk_a.stats.reads + pair.disk_b.stats.reads
    assert reads_after - reads_before == 1


def test_fresh_load_bypasses_cache(store, pair):
    block = store.store_new(Page(data=b"x"))
    store.flush()
    store.load(block)
    reads_before = pair.disk_a.stats.reads + pair.disk_b.stats.reads
    store.load(block, fresh=True)
    assert pair.disk_a.stats.reads + pair.disk_b.stats.reads > reads_before


def test_forget_and_free(store, pair):
    block = store.store_new(Page(data=b"x"))
    store.forget(block)
    assert store.dirty_count == 0
    block2 = store.store_new(Page(data=b"y"))
    store.flush()
    store.free(block2)
    assert not pair.disk_a.holds(block2)


def test_tas_commit_ref_success_and_failure(store):
    version = Page(is_version_page=True, commit_ref=NIL)
    block = store.store_new(version)
    store.flush()
    result = store.tas_commit_ref(block, 777)
    assert result.success
    assert store.read_commit_ref(block) == 777
    # Second committer loses and learns the winner.
    again = store.tas_commit_ref(block, 888)
    assert not again.success
    assert int.from_bytes(again.current, "big") == 777


def test_tas_requires_flush(store):
    block = store.store_new(Page(is_version_page=True))
    with pytest.raises(AssertionError):
        store.tas_commit_ref(block, 1)


def test_lock_based_commit_protocol(store):
    """The §4 alternative critical section behaves identically to TAS."""
    store.commit_protocol = "lock"
    version = Page(is_version_page=True, commit_ref=NIL)
    block = store.store_new(version)
    store.flush()
    result = store.tas_commit_ref(block, 777)
    assert result.success
    assert store.read_commit_ref(block) == 777
    again = store.tas_commit_ref(block, 888)
    assert not again.success
    assert int.from_bytes(again.current, "big") == 777
    # The lock was released both times.
    assert store.blocks.lock(block, locker=1)
    store.blocks.unlock(block, locker=1)


def test_lock_based_commit_full_service_flow():
    """A whole concurrent-commit scenario on the lock protocol."""
    from repro.errors import CommitConflict
    from repro.core.pathname import PagePath
    from repro.testbed import build_cluster

    cluster = build_cluster(seed=99)
    fs = cluster.fs()
    fs.store.commit_protocol = "lock"
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(3):
        fs.append_page(setup.version, PagePath.ROOT, b"c%d" % i)
    fs.commit(setup.version)
    va = fs.create_version(cap)
    vb = fs.create_version(cap)
    fs.write_page(va.version, PagePath.of(0), b"A")
    fs.write_page(vb.version, PagePath.of(1), b"B")
    fs.commit(va.version)
    fs.commit(vb.version)  # merges, then lock-protocol commit on the chain
    current = fs.current_version(cap)
    assert fs.read_page(current, PagePath.of(0)) == b"A"
    assert fs.read_page(current, PagePath.of(1)) == b"B"
    # And a genuine conflict still aborts.
    vc = fs.create_version(cap)
    vd = fs.create_version(cap)
    fs.read_page(vd.version, PagePath.of(2))
    fs.write_page(vc.version, PagePath.of(2), b"C")
    fs.write_page(vd.version, PagePath.of(0), b"D")
    fs.commit(vc.version)
    with pytest.raises(CommitConflict):
        fs.commit(vd.version)
