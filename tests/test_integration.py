"""End-to-end scenarios across the whole stack.

These are the paper's headline behaviours exercised through every layer at
once: replicated servers over companion-pair storage, crashes at awkward
moments, consistency without recovery.
"""

import pytest

from repro.errors import CommitConflict, ServerUnreachable
from repro.core.pathname import PagePath
from repro.client.api import FileClient
from repro.testbed import build_cluster

ROOT = PagePath.ROOT


def test_any_server_serves_any_file(cluster2):
    """Replicated file service: a file created via one server is fully
    usable via the other."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"from fs0")
    handle = fs1.create_version(cap)
    fs1.write_page(handle.version, ROOT, b"updated via fs1")
    fs1.commit(handle.version)
    assert fs0.read_page(fs0.current_version(cap), ROOT) == b"updated via fs1"


def test_concurrent_commits_via_different_servers(cluster2):
    """Two servers commit concurrent updates of one file: the block-level
    test-and-set arbitrates, and the loser merges."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"root")
    setup = fs0.create_version(cap)
    for i in range(2):
        fs0.append_page(setup.version, ROOT, b"c%d" % i)
    fs0.commit(setup.version)
    h0 = fs0.create_version(cap)
    h1 = fs1.create_version(cap)
    fs0.write_page(h0.version, PagePath.of(0), b"via fs0")
    fs1.write_page(h1.version, PagePath.of(1), b"via fs1")
    fs0.commit(h0.version)
    fs1.commit(h1.version)
    current = fs0.current_version(cap)
    assert fs0.read_page(current, PagePath.of(0)) == b"via fs0"
    assert fs0.read_page(current, PagePath.of(1)) == b"via fs1"


def test_file_server_crash_loses_nothing_committed(cluster2):
    """"Server crashes have no serious consequences: the file system is
    always in a consistent state [...] clients need only redo the update
    that remained unfinished"."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"committed-state")
    # An update is in progress on fs0 when it crashes.
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, ROOT, b"in-flight")
    fs0.crash()
    # The committed state is untouched and immediately readable via fs1.
    assert client.read(cap) == b"committed-state"
    # The client redoes the update through the surviving server — no
    # rollback, no lock clearing, no waiting for fs0.
    client.transact(cap, lambda u: u.write(ROOT, b"redone"))
    assert client.read(cap) == b"redone"


def test_no_recovery_needed_after_crash_restart(cluster2):
    """A crashed-and-restarted file server serves immediately: there is
    nothing to roll back and no intentions lists to run."""
    fs0 = cluster2.fs(0)
    cap = fs0.create_file(b"before")
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, ROOT, b"dirty-uncommitted")
    fs0.crash()
    fs0.restart()
    # Straight back to work, consistent state, zero recovery steps.
    assert fs0.read_page(fs0.current_version(cap), ROOT) == b"before"
    h2 = fs0.create_version(cap)
    fs0.write_page(h2.version, ROOT, b"after")
    fs0.commit(h2.version)
    assert fs0.read_page(fs0.current_version(cap), ROOT) == b"after"


def test_crash_between_flush_and_tas_is_harmless(cluster2):
    """The worst moment: pages flushed, commit reference not yet set.
    The version simply never happened."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"v1")
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, ROOT, b"almost")
    fs0.store.flush()  # everything durable except the commit reference
    fs0.crash()
    assert fs1.read_page(fs1.current_version(cap), ROOT) == b"v1"
    # The orphaned version's blocks are reclaimed by GC on another server.
    stats = cluster2.gc(1).collect()
    assert stats.reaped_versions == 1
    assert fs1.read_page(fs1.current_version(cap), ROOT) == b"v1"


def test_block_server_crash_transparent_to_clients(cluster2):
    """One half of the companion pair dies: the file service keeps going
    on the other half; after resync both disks agree."""
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"v1")
    cluster2.pair.a.crash()
    client.transact(cap, lambda u: u.write(ROOT, b"v2"))
    assert client.read(cap) == b"v2"
    cluster2.pair.a.restart()
    cluster2.pair.a.resync()
    assert cluster2.pair.consistent()
    # And the repaired half alone can serve everything.
    cluster2.pair.b.crash()
    assert client.read(cap) == b"v2"


def test_full_cold_recovery_from_stable_storage(cluster2):
    """§4's recovery story: after losing every server's memory, the file
    system is rebuilt from the persisted file table plus the recovery
    listing, and capabilities minted before the crash still work."""
    from repro.capability import CapabilityIssuer
    from repro.core.registry import FileRegistry

    fs0 = cluster2.fs(0)
    cap = fs0.create_file(b"precious")
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, ROOT, b"precious v2")
    fs0.commit(handle.version)
    # Persist the file table into a block (the replicated file table).
    table_block = fs0.store.blocks.allocate_write(fs0.registry.serialize())

    # Total amnesia: fresh registry and issuer, as a cold-started server.
    raw = fs0.store.blocks.read(table_block)
    recovered_registry = FileRegistry.deserialize(raw)
    fresh_issuer = CapabilityIssuer(cluster2.service_port)
    for entry in recovered_registry.files.values():
        fresh_issuer.install_secret(entry.obj, entry.secret)
    from repro.core.service import FileService

    reborn = FileService(
        "fs-reborn",
        cluster2.network,
        recovered_registry,
        fresh_issuer,
        cluster2.block_port,
        account=1,
    )
    # Wire a version entry for the current version on demand: resolving
    # goes through commit references on stable storage.
    entry = recovered_registry.file(cap.obj)
    block = reborn._resolve_current(entry)
    page = reborn.store.load(block)
    assert page.data == b"precious v2"
    # The old file capability validates against the recovered secrets.
    assert fresh_issuer.validate(cap) == cap.obj
    # And new updates work.
    h2 = reborn.create_version(cap)
    reborn.write_page(h2.version, ROOT, b"precious v3")
    reborn.commit(h2.version)
    assert reborn.read_page(reborn.current_version(cap), ROOT) == b"precious v3"


def test_write_once_media_runs_the_service(tmp_path):
    """Claim C10: the whole service runs on optical (write-once) disks —
    only the version pages' in-place fields need rewritable storage, and
    the paper's suggested cache-until-commit handles exactly that; here we
    verify what the paper implies: everything except version-page updates
    is append-only."""
    cluster = build_cluster(seed=3)
    fs = cluster.fs()
    disk = cluster.pair.disk_a
    cap = fs.create_file(b"v1")
    overwrites_before = disk.stats.overwrites
    handle = fs.create_version(cap)
    child = fs.append_page(handle.version, ROOT, b"data")
    fs.write_page(handle.version, child, b"data2")
    fs.commit(handle.version)
    # The only in-place rewrites are version pages (commit refs, locks).
    version_blocks = set(fs.family_tree(cap)["committed"])
    # Count overwrites of non-version blocks by replaying page identity:
    # all newly allocated page blocks were written exactly once.
    assert disk.stats.overwrites - overwrites_before <= 4  # version-page fields only


def test_many_files_many_clients_smoke(cluster2):
    """A broader smoke: several clients, several files, interleaved."""
    net = cluster2.network
    clients = [
        FileClient(net, f"host{i}", cluster2.service_port) for i in range(3)
    ]
    caps = [clients[0].create_file(b"f%d" % i) for i in range(4)]
    for round_ in range(3):
        for ci, client in enumerate(clients):
            for fi, cap in enumerate(caps):
                client.transact(
                    cap,
                    lambda u, r=round_, c=ci: u.write(ROOT, b"r%dc%d" % (r, c)),
                )
    for cap in caps:
        data = clients[0].read(cap)
        assert data == b"r2c2"
    assert cluster2.pair.consistent()
