"""Super-files, sub-files and the §5.3 locking/recovery protocol."""

import pytest

from repro.errors import CrossesSubFile, FileLocked
from repro.core.pathname import PagePath
from repro.core.system_tree import SystemTree

ROOT = PagePath.ROOT


@pytest.fixture
def nested(cluster):
    """Figure 2: super-file C containing sub-files A and B."""
    fs = cluster.fs()
    tree = SystemTree(fs)
    cap_c = fs.create_file(b"C root")
    handle = fs.create_version(cap_c)
    cap_a = tree.create_subfile(handle.version, ROOT, initial_data=b"A v1")
    cap_b = tree.create_subfile(handle.version, ROOT, initial_data=b"B v1")
    fs.commit(handle.version)
    return fs, tree, cap_c, cap_a, cap_b


def test_subfiles_are_independent_files(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    handle = fs.create_version(cap_a)
    fs.write_page(handle.version, ROOT, b"A v2")
    fs.commit(handle.version)
    assert fs.read_page(fs.current_version(cap_a), ROOT) == b"A v2"
    assert fs.read_page(fs.current_version(cap_b), ROOT) == b"B v1"


def test_parent_marked_super(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    assert fs.registry.file(cap_c.obj).is_super
    assert not fs.registry.file(cap_a.obj).is_super
    assert fs.registry.file(cap_a.obj).parent_obj == cap_c.obj


def test_walk_cannot_cross_subfile_boundary(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    handle = fs.create_version(cap_c)
    with pytest.raises(CrossesSubFile):
        fs.read_page(handle.version, PagePath.of(0))
    fs.abort(handle.version)


def test_subfile_at_resolves_capability(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    current = fs.current_version(cap_c)
    found = tree.subfile_at(current, PagePath.of(0))
    assert found.obj == cap_a.obj


def test_small_update_does_not_touch_super_tree(nested, cluster):
    """A sub-file commit leaves the super-file's page tree untouched —
    resolution chases the sub-file's commit chain instead."""
    fs, tree, cap_c, cap_a, cap_b = nested
    super_entry = cluster.registry.file(cap_c.obj)
    super_block = super_entry.entry_block
    super_raw = cluster.pair.disk_a.read(super_block)
    handle = fs.create_version(cap_a)
    fs.write_page(handle.version, ROOT, b"A v2")
    fs.commit(handle.version)
    assert cluster.pair.disk_a.read(super_block) == super_raw
    # And the new state is reachable through the super-file.
    current = fs.current_version(cap_c)
    sub = tree.subfile_at(current, PagePath.of(0))
    assert fs.read_page(fs.current_version(sub), ROOT) == b"A v2"


def test_super_update_atomic_across_subfiles(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    update = tree.begin_super_update(cap_c)
    ha = tree.open_subfile(update, cap_a)
    hb = tree.open_subfile(update, cap_b)
    fs.write_page(ha.version, ROOT, b"A v2")
    fs.write_page(hb.version, ROOT, b"B v2")
    # Before commit, nothing is visible.
    assert fs.read_page(fs.current_version(cap_a), ROOT) == b"A v1"
    tree.commit_super(update)
    assert fs.read_page(fs.current_version(cap_a), ROOT) == b"A v2"
    assert fs.read_page(fs.current_version(cap_b), ROOT) == b"B v2"


def test_inner_lock_blocks_small_updates(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    update = tree.begin_super_update(cap_c)
    tree.open_subfile(update, cap_a)
    with pytest.raises(FileLocked):
        fs.create_version(cap_a)
    # Sub-file B is not opened: it stays freely updatable.
    hb = fs.create_version(cap_b)
    fs.abort(hb.version)
    tree.abort_super(update)
    # After abort everything is unlocked again.
    ha = fs.create_version(cap_a)
    fs.abort(ha.version)


def test_second_super_update_blocked_by_top_lock(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    update = tree.begin_super_update(cap_c)
    with pytest.raises(FileLocked):
        tree.begin_super_update(cap_c)
    tree.abort_super(update)
    update2 = tree.begin_super_update(cap_c)
    tree.abort_super(update2)


def test_top_lock_of_small_update_delays_super_entry(nested):
    """"If an update, while descending the page tree, discovers a top
    lock, it must wait until the lock is cleared"."""
    fs, tree, cap_c, cap_a, cap_b = nested
    small = fs.create_version(cap_a)  # plants A's top-lock hint
    update = tree.begin_super_update(cap_c)
    with pytest.raises(FileLocked):
        tree.open_subfile(update, cap_a)
    fs.commit(small.version)  # new current with clear locks
    handle = tree.open_subfile(update, cap_a)
    fs.write_page(handle.version, ROOT, b"super says")
    tree.commit_super(update)
    assert fs.read_page(fs.current_version(cap_a), ROOT) == b"super says"


def test_abort_super_discards_everything(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    update = tree.begin_super_update(cap_c)
    ha = tree.open_subfile(update, cap_a)
    fs.write_page(ha.version, ROOT, b"junk")
    tree.abort_super(update)
    assert fs.read_page(fs.current_version(cap_a), ROOT) == b"A v1"


def test_crash_before_commit_waiter_clears(nested, cluster):
    """The holder dies before setting the commit reference: a waiter
    clears the locks and the update never happened."""
    fs, tree, cap_c, cap_a, cap_b = nested
    update = tree.begin_super_update(cap_c)
    ha = tree.open_subfile(update, cap_a)
    fs.write_page(ha.version, ROOT, b"never")
    fs.store.flush()
    fs.crash()

    fs2 = cluster.fs(0)  # same (restarted) server object in this test
    fs2.restart()
    # Another server (here: the restarted one, acting as waiter) recovers.
    waiter = SystemTree(fs2)
    status = waiter.wait_or_recover(cap_c)
    assert status == "cleared"
    assert fs2.read_page(fs2.current_version(cap_a), ROOT) == b"A v1"
    # The super-file is updatable again.
    update2 = waiter.begin_super_update(cap_c)
    waiter.abort_super(update2)


def test_crash_after_commit_ref_waiter_finishes(cluster):
    """The holder dies after the super commit reference was set: a waiter
    finishes the sub-file commits ("finishing the work of the crashed
    server")."""
    cluster2 = cluster
    fs = cluster2.fs()
    tree = SystemTree(fs)
    cap_c = fs.create_file(b"C")
    handle = fs.create_version(cap_c)
    cap_a = tree.create_subfile(handle.version, ROOT, initial_data=b"A v1")
    fs.commit(handle.version)

    update = tree.begin_super_update(cap_c)
    ha = tree.open_subfile(update, cap_a)
    fs.write_page(ha.version, ROOT, b"A v2")
    # Manually perform the first half of commit_super, then "crash".
    fs.store.flush()
    fs.commit(update.handle.version)  # super commit reference is set
    fs.crash()

    fs.restart()
    waiter = SystemTree(fs)
    status = waiter.wait_or_recover(cap_c)
    assert status == "finished"
    assert fs.read_page(fs.current_version(cap_a), ROOT) == b"A v2"
    # Locks cleared: a new small update on A works.
    h = fs.create_version(cap_a)
    fs.abort(h.version)


def test_recover_on_healthy_file_is_free(nested):
    fs, tree, cap_c, cap_a, cap_b = nested
    assert tree.wait_or_recover(cap_c) == "free"


def test_holder_alive_keeps_waiter_waiting(nested, cluster):
    fs, tree, cap_c, cap_a, cap_b = nested
    update = tree.begin_super_update(cap_c)
    status = tree.wait_or_recover(cap_c)
    assert status == "alive"
    tree.abort_super(update)


def test_three_level_nested_atomic_update(cluster):
    """A super update spanning files at two nesting depths commits all of
    them atomically: grandparent ⊃ parent ⊃ child."""
    fs = cluster.fs()
    tree = SystemTree(fs)
    grand = fs.create_file(b"G")
    handle = fs.create_version(grand)
    parent = tree.create_subfile(handle.version, ROOT, initial_data=b"P v1")
    fs.commit(handle.version)
    handle = fs.create_version(parent)
    child = tree.create_subfile(handle.version, ROOT, initial_data=b"C v1")
    fs.commit(handle.version)

    update = tree.begin_super_update(grand)
    hp = tree.open_subfile(update, parent)
    hc = tree.open_subfile(update, child)
    fs.write_page(hp.version, ROOT, b"P v2")
    fs.write_page(hc.version, ROOT, b"C v2")
    # Nothing visible yet, at either depth.
    assert fs.read_page(fs.current_version(parent), ROOT) == b"P v1"
    assert fs.read_page(fs.current_version(child), ROOT) == b"C v1"
    tree.commit_super(update)
    assert fs.read_page(fs.current_version(parent), ROOT) == b"P v2"
    assert fs.read_page(fs.current_version(child), ROOT) == b"C v2"
    # Everything unlocked again.
    h = fs.create_version(child)
    fs.abort(h.version)
    h = fs.create_version(parent)
    fs.abort(h.version)


def test_relaxed_super_update(nested):
    """§5.3's relaxation: version creation allowed despite the top lock;
    the optimistic layer underneath arbitrates."""
    fs, tree, cap_c, cap_a, cap_b = nested
    first = tree.begin_super_update(cap_c)
    relaxed = tree.begin_super_update(cap_c, relaxed=True)
    tree.abort_super(relaxed)
    tree.abort_super(first)
