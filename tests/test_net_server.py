"""The socket daemon (repro.net.server) and the TCP transport layer
(repro.net.transport) at the unit level: framing over real connections,
concurrent clients, error propagation, busy signalling, crash/restart
lifecycle, pooling and failover."""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    CommitConflict,
    FrameTooLarge,
    MessageDropped,
    ServerUnreachable,
)
from repro.net import NetServer, TcpNetwork, TcpTransaction, wire
from repro.net.aserver import AsyncNetServer
from repro.net.server import command_handler
from repro.obs import Recorder
from repro.sim.rpc import Request, RpcEndpoint, Transaction


class EchoServer:
    """A toy cmd_* server."""

    def __init__(self, name="echo"):
        self.name = name
        self.calls = 0

    def cmd_echo(self, value):
        self.calls += 1
        return value

    def cmd_add(self, a, b):
        return a + b

    def cmd_conflict(self):
        raise CommitConflict("synthetic conflict")

    def cmd_bug(self):
        raise ValueError("server bug")

    def cmd_slow(self, seconds):
        time.sleep(seconds)
        return "done"

    def cmd_big(self, n):
        return b"x" * n


def _stop_daemon(daemon):
    daemon.stop()
    if isinstance(daemon, AsyncNetServer):
        daemon.close_loop()


# Every daemon-level test runs against both implementations: the threaded
# thread-per-connection server and the asyncio event-loop server speak the
# same wire protocol and must be behaviourally identical at this level.
@pytest.fixture(params=[NetServer, AsyncNetServer], ids=["threaded", "async"])
def daemon_cls(request):
    return request.param


@pytest.fixture
def daemon(daemon_cls):
    server = EchoServer()
    daemon = daemon_cls("echo", command_handler(server, 0x42)).start()
    daemon.server_obj = server
    yield daemon
    _stop_daemon(daemon)


def _raw_call(address, frame):
    with socket.create_connection(address, timeout=5) as sock:
        sock.sendall(frame)
        header = _read(sock, wire.HEADER_SIZE)
        frame_type, _, length = wire.decode_header(header)
        return frame_type, _read(sock, length)


def _read(sock, n):
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        assert chunk, "connection closed early"
        data += chunk
    return data


# -- the daemon itself ------------------------------------------------------


def test_daemon_serves_a_request(daemon):
    frame_type, body = _raw_call(
        daemon.address, wire.encode_request("c1", "echo", {"value": b"hi"})
    )
    assert frame_type == wire.FRAME_REPLY
    assert wire.decode_value(body) == b"hi"


def test_many_requests_on_one_connection(daemon):
    with socket.create_connection(daemon.address, timeout=5) as sock:
        for i in range(20):
            sock.sendall(wire.encode_request("c1", "add", {"a": i, "b": 1}))
            header = _read(sock, wire.HEADER_SIZE)
            _, _, length = wire.decode_header(header)
            assert wire.decode_value(_read(sock, length)) == i + 1


def test_concurrent_connections(daemon):
    results = []

    def worker(i):
        frame_type, body = _raw_call(
            daemon.address, wire.encode_request("c", "add", {"a": i, "b": i})
        )
        results.append((frame_type, wire.decode_value(body), i))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(results) == 8
    assert all(ft == wire.FRAME_REPLY and v == 2 * i for ft, v, i in results)


def test_partial_writes_are_reassembled(daemon):
    """A request dribbled onto the socket byte by byte still parses."""
    frame = wire.encode_request("c", "echo", {"value": b"dribble"})
    with socket.create_connection(daemon.address, timeout=5) as sock:
        for i in range(len(frame)):
            sock.sendall(frame[i : i + 1])
        header = _read(sock, wire.HEADER_SIZE)
        _, _, length = wire.decode_header(header)
        assert wire.decode_value(_read(sock, length)) == b"dribble"


def test_server_error_crosses_as_typed_error_frame(daemon):
    frame_type, body = _raw_call(
        daemon.address, wire.encode_request("c", "conflict", {})
    )
    assert frame_type == wire.FRAME_ERROR
    assert isinstance(wire.decode_error(body), CommitConflict)

    frame_type, body = _raw_call(daemon.address, wire.encode_request("c", "bug", {}))
    assert frame_type == wire.FRAME_ERROR
    assert isinstance(wire.decode_error(body), ValueError)


def test_unknown_command_is_server_unreachable(daemon):
    frame_type, body = _raw_call(
        daemon.address, wire.encode_request("c", "nonsense", {})
    )
    assert frame_type == wire.FRAME_ERROR
    exc = wire.decode_error(body)
    assert isinstance(exc, ServerUnreachable)
    assert "nonsense" in str(exc)


def test_oversized_reply_is_an_error_frame_not_a_truncation(daemon_cls):
    server = EchoServer()
    daemon = daemon_cls(
        "small", command_handler(server, 0x42), max_frame=1024
    ).start()
    try:
        frame_type, body = _raw_call(
            daemon.address, wire.encode_request("c", "big", {"n": 4096})
        )
        assert frame_type == wire.FRAME_ERROR
        assert isinstance(wire.decode_error(body), FrameTooLarge)
    finally:
        _stop_daemon(daemon)


def test_garbage_header_gets_error_then_hangup(daemon):
    with socket.create_connection(daemon.address, timeout=5) as sock:
        sock.sendall(b"GARBAGE-" + b"\x00" * 8)
        header = _read(sock, wire.HEADER_SIZE)
        frame_type, _, length = wire.decode_header(header)
        assert frame_type == wire.FRAME_ERROR
        body = _read(sock, length)
        exc = wire.decode_error(body)
        assert "magic" in str(exc)
        # ...and then the daemon hangs up (EOF, or RST if our unread
        # garbage was still in its receive buffer at close).
        try:
            assert sock.recv(1) == b""
        except ConnectionResetError:
            pass


def test_busy_dispatch_answers_message_dropped(daemon_cls):
    server = EchoServer()
    daemon = daemon_cls(
        "busy", command_handler(server, 0x42), lock_timeout=0.05
    ).start()
    try:
        blocker = threading.Thread(
            target=lambda: _raw_call(
                daemon.address, wire.encode_request("c", "slow", {"seconds": 0.6})
            )
        )
        blocker.start()
        time.sleep(0.15)  # let the slow call take the dispatch lock
        frame_type, body = _raw_call(
            daemon.address, wire.encode_request("c", "echo", {"value": 1})
        )
        blocker.join(timeout=5)
        assert frame_type == wire.FRAME_ERROR
        assert isinstance(wire.decode_error(body), MessageDropped)
    finally:
        _stop_daemon(daemon)


def test_stop_refuses_connections_and_restart_keeps_port(daemon):
    host, port = daemon.address
    daemon.stop()
    try:
        with socket.create_connection((host, port), timeout=1) as sock:
            # Connecting to a dead ephemeral port on Linux can self-connect
            # (source port == destination port); either way, no daemon.
            assert sock.getsockname() == sock.getpeername()
    except OSError:
        pass
    daemon.start()
    assert daemon.address == (host, port)
    frame_type, body = _raw_call(
        daemon.address, wire.encode_request("c", "echo", {"value": "back"})
    )
    assert wire.decode_value(body) == "back"


# -- the TcpNetwork / TcpTransaction client layer ---------------------------


def test_transaction_class_dispatch_makes_tcp_transactions():
    net = TcpNetwork()
    txn = Transaction(net, "client")
    assert isinstance(txn, TcpTransaction)


def test_rpc_endpoint_attach_starts_a_real_daemon():
    net = TcpNetwork()
    server = EchoServer()
    RpcEndpoint(net, "echo", 0x99, server)
    try:
        assert net.is_up("echo")
        txn = Transaction(net, "client")
        assert txn.call(0x99, "add", a=2, b=3) == 5
        assert server.calls == 0  # add, not echo
    finally:
        net.close()


def test_connection_pooling_reuses_one_connection():
    recorder = Recorder()
    net = TcpNetwork(recorder=recorder)
    RpcEndpoint(net, "echo", 0x99, EchoServer())
    try:
        txn = Transaction(net, "client")
        for i in range(10):
            assert txn.call(0x99, "echo", value=i) == i
        assert recorder.metrics.counters["net.tcp.connections"].value == 1
        assert recorder.metrics.counters["net.tcp.requests"].value == 10
    finally:
        net.close()


def test_failover_to_companion_on_refused_connection():
    recorder = Recorder()
    net = TcpNetwork(recorder=recorder)
    a, b = EchoServer("a"), EchoServer("b")
    RpcEndpoint(net, "srvA", 0x77, a)
    RpcEndpoint(net, "srvB", 0x77, b)
    try:
        txn = Transaction(net, "client")
        txn.call(0x77, "echo", value=1)
        assert (a.calls, b.calls) == (1, 0)  # deterministic order: srvA first
        net.detach("srvA")
        txn.call(0x77, "echo", value=2)
        assert (a.calls, b.calls) == (1, 1)
        assert recorder.metrics.counters["net.tcp.failovers"].value >= 1
        net.reattach("srvA")
        txn.call(0x77, "echo", value=3)
        assert (a.calls, b.calls) == (2, 1)
    finally:
        net.close()


def test_stale_pooled_connection_reconnects_transparently():
    recorder = Recorder()
    net = TcpNetwork(recorder=recorder)
    server = EchoServer()
    RpcEndpoint(net, "echo", 0x99, server)
    try:
        txn = Transaction(net, "client")
        assert txn.call(0x99, "echo", value=1) == 1
        # Bounce the daemon: the pooled connection is now dead, but the
        # registry still points at the same port.
        net.detach("echo")
        net.reattach("echo")
        assert txn.call(0x99, "echo", value=2) == 2
        assert recorder.metrics.counters["net.tcp.connections"].value >= 2
    finally:
        net.close()


def test_all_daemons_down_raises_server_unreachable():
    net = TcpNetwork()
    net.retry_sweeps = 2
    net.retry_backoff = 0.01
    RpcEndpoint(net, "solo", 0x55, EchoServer())
    try:
        txn = Transaction(net, "client")
        net.detach("solo")
        with pytest.raises(ServerUnreachable):
            txn.call(0x55, "echo", value=1)
    finally:
        net.close()


def test_unregistered_port_raises():
    net = TcpNetwork()
    txn = Transaction(net, "client")
    with pytest.raises(ServerUnreachable):
        txn.call(0xDEAD, "echo", value=1)


def test_call_timeout_on_a_hung_server():
    server = EchoServer()
    net = TcpNetwork(call_timeout=0.3)
    net.retry_sweeps = 1
    RpcEndpoint(net, "hung", 0x66, server)
    try:
        txn = Transaction(net, "client")
        start = time.monotonic()
        with pytest.raises(ServerUnreachable):
            txn.call(0x66, "slow", seconds=3.0)
        assert time.monotonic() - start < 2.5
    finally:
        net.close()
