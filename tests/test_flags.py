"""The C/R/W/S/M flags and their 4-bit encoding (§5.1)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.flags import Flags


def test_exactly_13_valid_combinations():
    """"This reduces the number of flag combinations to 13."""
    valid = 0
    for c, r, w, s, m in itertools.product([False, True], repeat=5):
        try:
            Flags(c, r, w, s, m)
            valid += 1
        except ValueError:
            pass
    assert valid == 13
    assert len(Flags.all_valid()) == 13


def test_access_requires_copied():
    for kwargs in ({"r": True}, {"w": True}, {"s": True, "m": False}):
        with pytest.raises(ValueError):
            Flags(c=False, **kwargs)


def test_modified_implies_searched():
    with pytest.raises(ValueError):
        Flags(c=True, m=True, s=False)


def test_encoding_is_a_bijection_on_valid_combos():
    seen = set()
    for flags in Flags.all_valid():
        code = flags.encode()
        assert 0 <= code <= 12
        assert code not in seen
        seen.add(code)
        assert Flags.decode(code) == flags


def test_decode_rejects_invalid_codes():
    for code in (13, 14, 15, -1, 16):
        with pytest.raises(ValueError):
            Flags.decode(code)


def test_clear_flags_encode_to_zero():
    assert Flags().encode() == 0
    assert Flags.decode(0) == Flags()


def test_transitions_set_expected_bits():
    f = Flags()
    assert f.copy() == Flags(c=True)
    assert f.read() == Flags(c=True, r=True)
    assert f.write() == Flags(c=True, w=True)
    assert f.search() == Flags(c=True, s=True)
    assert f.modify() == Flags(c=True, s=True, m=True)


def test_transitions_are_monotone():
    f = Flags().read().write().search().modify()
    assert f == Flags(c=True, r=True, w=True, s=True, m=True)


def test_read_write_independent():
    """"The two flags operate independent of one another."""
    assert Flags().read().w is False
    assert Flags().write().r is False


def test_read_and_write_set_membership():
    assert Flags().read().in_read_set
    assert Flags().search().in_read_set
    assert not Flags().write().in_read_set
    assert Flags().write().in_write_set
    assert Flags().modify().in_write_set
    assert not Flags().read().in_write_set
    assert not Flags(c=True).accessed
    assert Flags().read().accessed


def test_str_rendering():
    assert str(Flags()) == "-----"
    assert str(Flags(c=True, r=True, w=True, s=True, m=True)) == "CRWSM"


@given(st.integers(min_value=0, max_value=12))
def test_decode_encode_roundtrip(code):
    assert Flags.decode(code).encode() == code


@given(st.sampled_from(Flags.all_valid()))
def test_any_transition_preserves_validity(flags):
    for transition in ("copy", "read", "write", "search", "modify"):
        result = getattr(flags, transition)()
        # Constructing without exception is the validity check.
        assert result.c
