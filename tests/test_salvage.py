"""Salvage: rebuilding the file table from the blocks alone (§4)."""

import pytest

from repro.capability import CapabilityIssuer
from repro.core.pathname import PagePath
from repro.core.registry import FileRegistry
from repro.core.service import FileService
from repro.testbed import build_cluster
from repro.tools.salvage import salvage

ROOT = PagePath.ROOT


def _populated_cluster():
    cluster = build_cluster(servers=1, seed=33)
    fs = cluster.fs()
    caps = []
    for f in range(3):
        cap = fs.create_file(b"file%d-r0" % f)
        for r in range(1, 3):
            handle = fs.create_version(cap)
            fs.write_page(handle.version, ROOT, b"file%d-r%d" % (f, r))
            fs.append_page(handle.version, ROOT, b"child-%d-%d" % (f, r))
            fs.commit(handle.version)
        caps.append(cap)
    fs.store.flush()
    return cluster, fs, caps


def _amnesiac_server(cluster):
    """A server with no memory of anything: fresh registry, fresh issuer."""
    return FileService(
        "reborn",
        cluster.network,
        FileRegistry(),
        CapabilityIssuer(cluster.service_port),
        cluster.block_port,
        account=1,
    )


def test_salvage_recovers_every_file(cluster2=None):
    cluster, fs, caps = _populated_cluster()
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    assert report.files_recovered == 3
    assert report.version_pages >= 7  # 1 birth + 2 commits per file
    # Every file's current state is readable through fresh capabilities.
    recovered = sorted(report.files.items())
    contents = {
        reborn.read_page(reborn.current_version(cap), ROOT)
        for _, cap in recovered
    }
    assert contents == {b"file0-r2", b"file1-r2", b"file2-r2"}


def test_salvage_finds_current_not_old_versions():
    cluster, fs, caps = _populated_cluster()
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    for obj, cap in report.files.items():
        data = reborn.read_page(reborn.current_version(cap), ROOT)
        assert data.endswith(b"-r2"), f"recovered a stale version: {data!r}"


def test_salvaged_files_are_updatable():
    cluster, fs, caps = _populated_cluster()
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    obj, cap = sorted(report.files.items())[0]
    handle = reborn.create_version(cap)
    reborn.write_page(handle.version, ROOT, b"post-salvage")
    reborn.commit(handle.version)
    assert reborn.read_page(reborn.current_version(cap), ROOT) == b"post-salvage"
    # History links still intact.
    tree = reborn.family_tree(cap)
    assert len(tree["committed"]) == 4


def test_salvage_ignores_uncommitted_versions():
    cluster, fs, caps = _populated_cluster()
    # Leave an uncommitted version lying around, flushed.
    handle = fs.create_version(caps[0])
    fs.write_page(handle.version, ROOT, b"tentative")
    fs.store.flush()
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    obj, cap = [(o, c) for o, c in report.files.items() if o == caps[0].obj][0]
    assert reborn.read_page(reborn.current_version(cap), ROOT) == b"file0-r2"


def test_salvage_single_version_file():
    cluster = build_cluster(seed=34)
    fs = cluster.fs()
    cap = fs.create_file(b"only version")
    fs.store.flush()
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    assert report.files_recovered == 1
    __, fresh = next(iter(report.files.items()))
    assert reborn.read_page(reborn.current_version(fresh), ROOT) == b"only version"


def test_salvage_empty_account():
    cluster = build_cluster(seed=35)
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    assert report.files_recovered == 0
    assert report.blocks_scanned == 0


def test_salvage_after_total_service_loss_end_to_end():
    """The full catastrophe: every file server dies with all memory; a
    cold replacement salvages from the block layer and serves."""
    cluster, fs, caps = _populated_cluster()
    fs.crash()  # the only server is gone, registry and issuer with it
    reborn = _amnesiac_server(cluster)
    report = salvage(reborn)
    assert report.files_recovered == 3
    from repro.tools.check import check_cluster

    cluster.servers.append(reborn)  # let fsck find the live server
    result = check_cluster(cluster)
    assert result.ok, result.errors
