"""Flag bookkeeping during walks: where C, R, W, S, M land (§5.1).

These tests pin the exact semantics the serialisability test depends on:

* flags about page X live in the reference *to* X (the root's in the
  version-page header);
* navigating through a page sets S on the reference to it;
* reading a page's data sets R on the reference to it; writing sets W;
* restructuring a page's reference table sets M (and S) on the reference
  to it;
* any access shadows the page (C), and "the parent page of a written page
  is not considered written or modified, although, strictly speaking, it
  has changed".
"""

import pytest

from repro.core.flags import Flags
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


@pytest.fixture
def deep_file(fs):
    """A file with structure root -> a -> b, plus a sibling c of a."""
    cap = fs.create_file(b"rootdata")
    handle = fs.create_version(cap)
    a = fs.append_page(handle.version, ROOT, b"a-data")  # 0
    b = fs.append_page(handle.version, a, b"b-data")  # 0/0
    c = fs.append_page(handle.version, ROOT, b"c-data")  # 1
    fs.commit(handle.version)
    return cap, a, b, c


def _flags_along(fs, version_cap, path: PagePath) -> list[Flags]:
    """Flags for each prefix of ``path``: [root, p[:1], p[:2], ...]."""
    entry = fs.registry.version(version_cap.obj)
    page = fs.store.load(entry.root_block)
    out = [page.root_flags]
    current = page
    for index in path:
        ref = current.ref(index)
        out.append(ref.flags)
        if not ref.flags.c:
            break
        current = fs.store.load(ref.block)
    return out


def test_read_sets_r_on_target_s_on_path(fs, deep_file):
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.read_page(handle.version, b)
    root_f, a_f, b_f = _flags_along(fs, handle.version, b)
    assert root_f.s and not root_f.r and not root_f.w
    assert a_f.c and a_f.s and not a_f.r and not a_f.w
    assert b_f.c and b_f.r and not b_f.w and not b_f.s
    fs.abort(handle.version)


def test_write_sets_w_on_target_only(fs, deep_file):
    """"The parent page of a written page is not considered written."""
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.write_page(handle.version, b, b"new")
    root_f, a_f, b_f = _flags_along(fs, handle.version, b)
    assert root_f.s and not root_f.w and not root_f.m
    assert a_f.s and not a_f.w and not a_f.m
    assert b_f.w and not b_f.r
    fs.abort(handle.version)


def test_untouched_siblings_stay_unshadowed(fs, deep_file):
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.read_page(handle.version, b)
    entry = fs.registry.version(handle.version.obj)
    root_page = fs.store.load(entry.root_block)
    assert not root_page.ref(c.last).flags.c  # sibling c shared, untouched
    fs.abort(handle.version)


def test_structural_change_sets_m_and_s(fs, deep_file):
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.append_page(handle.version, a, b"new child of a")
    root_f, a_f = _flags_along(fs, handle.version, a)
    assert a_f.m and a_f.s
    assert not a_f.w  # data untouched
    assert root_f.s and not root_f.m
    fs.abort(handle.version)


def test_root_structural_change_sets_root_m(fs, deep_file):
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"new top-level")
    root_f = _flags_along(fs, handle.version, ROOT)[0]
    assert root_f.m and root_f.s
    fs.abort(handle.version)


def test_fresh_version_has_no_flags(fs, deep_file):
    """A new version shares everything with its base: all flags clear."""
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    entry = fs.registry.version(handle.version.obj)
    page = fs.store.load(entry.root_block)
    assert page.root_flags == Flags()
    assert all(ref.flags == Flags() for ref in page.refs)
    fs.abort(handle.version)


def test_shadow_copy_happens_once(fs, deep_file):
    """"A page is only copied once; after it has been copied for writing,
    it can be written in place when it is written again."""
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.write_page(handle.version, b, b"w1")
    entry = fs.registry.version(handle.version.obj)
    root_page = fs.store.load(entry.root_block)
    a_block_first = root_page.ref(a.last).block
    fs.write_page(handle.version, b, b"w2")
    root_page = fs.store.load(entry.root_block)
    assert root_page.ref(a.last).block == a_block_first
    fs.abort(handle.version)


def test_shadowed_child_gets_cleared_flags_and_base_ref(fs, deep_file):
    """"When a page is first read, the C, R, W, S and M flags it contains
    for its child pages must be initialised to zero."""
    cap, a, b, c = deep_file
    old_current = fs.registry.file(cap.obj).entry_block
    base_a_block = fs.store.load(old_current).ref(a.last).block
    handle = fs.create_version(cap)
    fs.read_page(handle.version, a)
    entry = fs.registry.version(handle.version.obj)
    shadow_a_ref = fs.store.load(entry.root_block).ref(a.last)
    assert shadow_a_ref.flags.c
    shadow_a = fs.store.load(shadow_a_ref.block)
    assert shadow_a.base_ref == base_a_block
    assert all(ref.flags == Flags() for ref in shadow_a.refs)
    # The shadow shares its children with the base (same block numbers).
    base_a = fs.store.load(base_a_block)
    assert [r.block for r in shadow_a.refs] == [r.block for r in base_a.refs]
    fs.abort(handle.version)


def test_reading_root_data_sets_root_r(fs, deep_file):
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.read_page(handle.version, ROOT)
    root_f = _flags_along(fs, handle.version, ROOT)[0]
    assert root_f.r and not root_f.s
    fs.abort(handle.version)


def test_structure_query_sets_s_on_target(fs, deep_file):
    cap, a, b, c = deep_file
    handle = fs.create_version(cap)
    fs.page_structure(handle.version, a)
    root_f, a_f = _flags_along(fs, handle.version, a)
    assert a_f.s and not a_f.m
    fs.abort(handle.version)
