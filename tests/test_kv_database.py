"""The B-tree store, including a model-based hypothesis test."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kv_database import BTreeStore, _Node
from repro.client.api import FileClient


@pytest.fixture
def bt(client):
    return BTreeStore(client, order=4)


@pytest.fixture
def db(bt):
    return bt.create()


def test_empty_store(bt, db):
    assert bt.get(db, b"missing") is None
    assert bt.items(db) == []
    assert bt.count(db) == 0


def test_put_get(bt, db):
    bt.put(db, b"key", b"value")
    assert bt.get(db, b"key") == b"value"


def test_put_replaces(bt, db):
    bt.put(db, b"k", b"v1")
    bt.put(db, b"k", b"v2")
    assert bt.get(db, b"k") == b"v2"
    assert bt.count(db) == 1


def test_many_inserts_stay_sorted(bt, db, rng):
    keys = [b"k%04d" % i for i in range(80)]
    shuffled = keys[:]
    rng.shuffle(shuffled)
    for key in shuffled:
        bt.put(db, key, b"v" + key)
    assert [k for k, _ in bt.items(db)] == keys
    for key in keys:
        assert bt.get(db, key) == b"v" + key


def test_range_query(bt, db):
    for i in range(30):
        bt.put(db, b"%02d" % i, b"x")
    result = bt.range(db, b"10", b"15")
    assert [k for k, _ in result] == [b"10", b"11", b"12", b"13", b"14"]


def test_delete(bt, db):
    bt.put(db, b"a", b"1")
    bt.put(db, b"b", b"2")
    assert bt.delete(db, b"a")
    assert bt.get(db, b"a") is None
    assert bt.get(db, b"b") == b"2"
    assert not bt.delete(db, b"a")


def test_put_many_atomic(bt, db):
    bt.put_many(db, [(b"x", b"1"), (b"y", b"2"), (b"z", b"3")])
    assert bt.count(db) == 3


def test_update_read_modify_write(bt, db):
    bt.put(db, b"seats", b"10")
    result = bt.update(db, b"seats", lambda old: b"%d" % (int(old) - 1))
    assert result == b"9"
    assert bt.get(db, b"seats") == b"9"


def test_update_on_absent_key(bt, db):
    bt.update(db, b"fresh", lambda old: b"born" if old is None else b"no")
    assert bt.get(db, b"fresh") == b"born"


def test_snapshot_isolation_of_items(cluster, bt, db):
    """items() reads one committed snapshot: a concurrent put does not
    tear the iteration."""
    for i in range(10):
        bt.put(db, b"%02d" % i, b"old")
    snapshot_version = bt.client.current_version(db)
    bt.put(db, b"05", b"new")
    # A reader holding the old version still sees the old value.
    node = bt._load(snapshot_version, 0)
    assert bt.get(db, b"05") == b"new"


def test_order_validation(client):
    with pytest.raises(ValueError):
        BTreeStore(client, order=2)


def test_node_encoding_roundtrip():
    leaf = _Node(True, [b"a", b"b"], values=[b"1", b"2"])
    assert _Node.decode(leaf.encode()).keys == [b"a", b"b"]
    inner = _Node(False, [b"m"], children=[3, 7])
    back = _Node.decode(inner.encode())
    assert back.children == [3, 7]
    assert not back.leaf


def test_concurrent_puts_different_keys(cluster):
    """Bookings on different flights do not conflict (§6)."""
    net = cluster.network
    c1 = FileClient(net, "c1", cluster.service_port)
    c2 = FileClient(net, "c2", cluster.service_port)
    b1, b2 = BTreeStore(c1, order=16), BTreeStore(c2, order=16)
    db = b1.create()
    for i in range(20):  # pre-split so leaves differ
        b1.put(db, b"k%02d" % i, b"init")
    before = c2.stats.conflicts
    b1.put(db, b"k01", b"from c1")
    b2.put(db, b"k19", b"from c2")
    assert b1.get(db, b"k01") == b"from c1"
    assert b2.get(db, b"k19") == b"from c2"


def test_transact_keys_atomic_transfer(cluster, bt, db):
    bt.put_many(db, [(b"alice", b"100"), (b"bob", b"50")])

    def move(values):
        return {
            b"alice": b"%d" % (int(values[b"alice"]) - 30),
            b"bob": b"%d" % (int(values[b"bob"]) + 30),
        }

    result = bt.transact_keys(db, [b"alice", b"bob"], move)
    assert result == {b"alice": b"70", b"bob": b"80"}
    assert bt.get(db, b"alice") == b"70"
    assert bt.get(db, b"bob") == b"80"


def test_transact_keys_sees_absent_keys_as_none(bt, db):
    def create(values):
        assert values == {b"new": None}
        return {b"new": b"born"}

    bt.transact_keys(db, [b"new"], create)
    assert bt.get(db, b"new") == b"born"


def test_transact_keys_conserves_under_concurrency(cluster):
    """Interleaved transfers over shared accounts never lose money."""
    from repro.sim.sched import Scheduler

    c1 = FileClient(cluster.network, "t1", cluster.service_port)
    c2 = FileClient(cluster.network, "t2", cluster.service_port)
    b1, b2 = BTreeStore(c1), BTreeStore(c2)
    db = b1.create()
    b1.put_many(db, [(b"a", b"100"), (b"b", b"100"), (b"c", b"100")])

    def transfers(store, pairs):
        for src, dst in pairs:
            def move(values, src=src, dst=dst):
                return {
                    src: b"%d" % (int(values[src]) - 10),
                    dst: b"%d" % (int(values[dst]) + 10),
                }
            store.transact_keys(db, [src, dst], move)
            yield

    sched = Scheduler()
    sched.spawn("t1", transfers(b1, [(b"a", b"b"), (b"b", b"c"), (b"a", b"c")]))
    sched.spawn("t2", transfers(b2, [(b"c", b"a"), (b"a", b"b"), (b"b", b"a")]))
    sched.run()
    total = sum(int(v) for _, v in b1.items(db))
    assert total == 300


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get"]),
            st.integers(min_value=0, max_value=30),
            st.binary(min_size=1, max_size=6),
        ),
        max_size=40,
    )
)
def test_model_based_equivalence(ops):
    """The B-tree behaves exactly like a dict under random operations."""
    from repro.testbed import build_cluster

    cluster = build_cluster(seed=3)
    client = FileClient(cluster.network, "h", cluster.service_port)
    bt = BTreeStore(client, order=3)  # tiny order: lots of splits
    db = bt.create()
    model: dict[bytes, bytes] = {}
    for op, key_n, value in ops:
        key = b"key%02d" % key_n
        if op == "put":
            bt.put(db, key, value)
            model[key] = value
        elif op == "delete":
            assert bt.delete(db, key) == (key in model)
            model.pop(key, None)
        else:
            assert bt.get(db, key) == model.get(key)
    assert bt.items(db) == sorted(model.items())
