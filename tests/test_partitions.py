"""Network partitions and service coexistence.

The paper's model is a 1985 LAN: servers crash, disks fail, but the paper
does not design for long-lived partitions.  These tests pin the behaviour
our reproduction gives anyway: partition between the companion halves
degrades to single-half operation with intentions, and healing plus mutual
resync reconciles (for the disjoint-block case; same-block divergence is
out of the paper's model and stays documented, not solved).

Also: §2.1's open-system pluralism — independent file services coexisting
over one block service, each under its own account, invisible to each
other.
"""

import pytest

from repro.capability import CapabilityIssuer, new_port
from repro.core.pathname import PagePath
from repro.core.registry import FileRegistry
from repro.core.service import FileService
from repro.client.api import FileClient
from repro.errors import NotBlockOwner
from repro.testbed import build_cluster

ROOT = PagePath.ROOT


def test_partitioned_pair_degrades_to_intentions(cluster):
    """A partition between the companion halves: operations proceed on
    the reachable half, intentions accumulate for the other."""
    net = cluster.network
    pair = cluster.pair
    client = FileClient(net, "host", cluster.service_port)
    cap = client.create_file(b"v0")
    net.partition(pair.a.name, pair.b.name)
    client.transact(cap, lambda u: u.write(ROOT, b"v1"))
    assert client.read(cap) == b"v1"
    assert len(pair.a._intentions) > 0  # recorded for the unreachable half
    net.heal(pair.a.name, pair.b.name)
    applied = pair.b.resync()
    assert applied >= len([])  # applied everything A queued
    assert pair.consistent()


def test_partition_of_client_from_one_server(cluster2):
    """A client partitioned from one file server transparently uses the
    other replica."""
    net = cluster2.network
    client = FileClient(net, "host", cluster2.service_port)
    cap = client.create_file(b"v0")
    net.partition("host", "fs0")
    client.transact(cap, lambda u: u.write(ROOT, b"via fs1"))
    assert client.read(cap) == b"via fs1"
    net.heal("host", "fs0")
    # fs0 sees the committed state too (shared block storage).
    assert cluster2.fs(0).read_page(
        cluster2.fs(0).current_version(cap), ROOT
    ) == b"via fs1"


def test_two_file_services_coexist_on_one_block_service(cluster):
    """§2.1: "There can be several file servers [...] The choice of which
    file server to use is up to the user."  A second, independent file
    service under its own account shares the block service but cannot
    touch the first service's blocks."""
    net = cluster.network
    second_port = new_port(cluster.rng)
    second = FileService(
        "other-service",
        net,
        FileRegistry(),
        CapabilityIssuer(second_port),
        cluster.block_port,
        account=2,  # its own account: the protection boundary
    )
    mine = cluster.fs().create_file(b"service one data")
    theirs = second.create_file(b"service two data")
    assert second.read_page(second.current_version(theirs), ROOT) == b"service two data"
    assert (
        cluster.fs().read_page(cluster.fs().current_version(mine), ROOT)
        == b"service one data"
    )
    # Account protection: service two cannot read service one's blocks.
    my_block = cluster.registry.file(mine.obj).entry_block
    with pytest.raises(NotBlockOwner):
        second.store.blocks.read(my_block)


def test_recovery_listing_is_per_account(cluster):
    """The §4 recovery operation returns only the asking account's blocks."""
    net = cluster.network
    second = FileService(
        "other-service",
        net,
        FileRegistry(),
        CapabilityIssuer(new_port(cluster.rng)),
        cluster.block_port,
        account=2,
    )
    cluster.fs().create_file(b"one")
    second.create_file(b"two")
    second.store.flush()
    mine = set(cluster.fs().store.blocks.recover())
    theirs = set(second.store.blocks.recover())
    assert mine and theirs
    assert mine.isdisjoint(theirs)
