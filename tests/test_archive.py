"""Archive export/import: history-preserving, sharing-preserving."""

import pytest

from repro.core.pathname import PagePath
from repro.testbed import build_cluster
from repro.tools.archive import export_file, import_file

ROOT = PagePath.ROOT


def _history_file(fs, revisions=4, chunk=b"shared-untouched-data"):
    """A file whose revisions rewrite the root but share child pages."""
    cap = fs.create_file(b"r0")
    handle = fs.create_version(cap)
    for i in range(3):
        fs.append_page(handle.version, ROOT, chunk + b"-%d" % i)
    fs.commit(handle.version)
    for n in range(2, revisions + 1):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"r%d" % n)
        fs.commit(handle.version)
    return cap


def test_roundtrip_current_state(cluster, fs):
    cap = _history_file(fs)
    archive = export_file(fs, cap)
    new_cap, stats = import_file(fs, archive)
    assert new_cap.obj != cap.obj
    assert fs.read_page(fs.current_version(new_cap), ROOT) == b"r4"
    for i in range(3):
        assert fs.read_page(
            fs.current_version(new_cap), PagePath.of(i)
        ) == b"shared-untouched-data-%d" % i


def test_roundtrip_preserves_history(cluster, fs):
    cap = _history_file(fs)
    archive = export_file(fs, cap)
    new_cap, stats = import_file(fs, archive)
    old = [fs.read_page(v, ROOT) for v in fs.committed_versions(cap)]
    new = [fs.read_page(v, ROOT) for v in fs.committed_versions(new_cap)]
    assert new == old
    assert stats.versions == len(old)


def test_sharing_preserved(cluster, fs):
    """Pages shared between revisions are archived once and imported
    once — the differential property survives the trip."""
    cap = _history_file(fs, revisions=6)
    archive = export_file(fs, cap)
    __, stats = import_file(fs, archive)
    # 7 version pages + 3 shared children ≈ 10 blocks; NOT 7 * 4.
    assert stats.blocks <= 12
    assert stats.shared_blocks >= 3


def test_import_into_other_cluster():
    source = build_cluster(seed=61)
    target = build_cluster(seed=62)
    cap = _history_file(source.fs())
    archive = export_file(source.fs(), cap)
    new_cap, _ = import_file(target.fs(), archive)
    assert (
        target.fs().read_page(target.fs().current_version(new_cap), ROOT) == b"r4"
    )
    # The import is a healthy citizen of the target file system.
    from repro.tools.check import check_cluster

    report = check_cluster(target)
    assert report.ok, report.errors


def test_imported_file_is_updatable(cluster, fs):
    cap = _history_file(fs)
    new_cap, _ = import_file(fs, export_file(fs, cap))
    handle = fs.create_version(new_cap)
    fs.write_page(handle.version, ROOT, b"post-import")
    fs.commit(handle.version)
    assert fs.read_page(fs.current_version(new_cap), ROOT) == b"post-import"
    # The original is untouched.
    assert fs.read_page(fs.current_version(cap), ROOT) == b"r4"


def test_garbage_archive_rejected(fs):
    with pytest.raises(ValueError):
        import_file(fs, b"NOTANARCHIVE" + b"\x00" * 50)


def test_archive_with_holes_and_structure(cluster, fs):
    """Structural oddities — holes, deep nesting — survive the trip."""
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    a = fs.append_page(handle.version, ROOT, b"a")
    b = fs.append_page(handle.version, ROOT, b"b")
    fs.append_page(handle.version, a, b"deep")
    fs.make_hole(handle.version, b)
    fs.commit(handle.version)
    new_cap, _ = import_file(fs, export_file(fs, cap))
    current = fs.current_version(new_cap)
    assert fs.page_structure(current, ROOT) == [1, 0]
    assert fs.read_page(current, PagePath.of(0, 0)) == b"deep"
    from repro.errors import HoleReference

    with pytest.raises(HoleReference):
        fs.read_page(current, PagePath.of(1))


def test_archive_single_version_file(cluster, fs):
    cap = fs.create_file(b"lonely")
    new_cap, stats = import_file(fs, export_file(fs, cap))
    assert stats.versions == 1
    assert fs.read_page(fs.current_version(new_cap), ROOT) == b"lonely"


def test_import_then_fsck_then_gc(cluster, fs):
    """An imported file plays nicely with the collector and the checker."""
    cap = _history_file(fs)
    new_cap, _ = import_file(fs, export_file(fs, cap))
    cluster.gc().collect()
    from repro.tools.check import check_cluster

    report = check_cluster(cluster, gc_expected_clean=True)
    assert report.ok, report.errors
    assert fs.read_page(fs.current_version(new_cap), ROOT) == b"r4"


def test_uncommitted_versions_not_exported(cluster, fs):
    cap = _history_file(fs)
    pending = fs.create_version(cap)
    fs.write_page(pending.version, ROOT, b"tentative")
    archive = export_file(fs, cap)
    new_cap, stats = import_file(fs, archive)
    texts = [fs.read_page(v, ROOT) for v in fs.committed_versions(new_cap)]
    assert b"tentative" not in texts
    fs.abort(pending.version)
