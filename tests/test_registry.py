"""The file table (registry): lookups, persistence, restoration."""

import pytest

from repro.errors import NoSuchFile, NoSuchVersion
from repro.core.registry import FileEntry, FileRegistry, VersionEntry


@pytest.fixture
def registry():
    reg = FileRegistry()
    reg.add_file(FileEntry(1, entry_block=10, secret=111))
    reg.add_file(FileEntry(2, entry_block=20, secret=222, is_super=True, parent_obj=0))
    reg.add_version(VersionEntry(3, file_obj=1, root_block=10, secret=333, status="committed"))
    reg.add_version(VersionEntry(4, file_obj=1, root_block=40, secret=444))
    return reg


def test_lookup(registry):
    assert registry.file(1).entry_block == 10
    assert registry.version(4).root_block == 40


def test_missing_lookups_raise(registry):
    with pytest.raises(NoSuchFile):
        registry.file(99)
    with pytest.raises(NoSuchVersion):
        registry.version(99)


def test_fresh_obj_monotone(registry):
    first = registry.fresh_obj()
    second = registry.fresh_obj()
    assert second == first + 1
    assert first > 4  # past every registered object


def test_drop_file_cascades_to_versions(registry):
    registry.drop_file(1)
    with pytest.raises(NoSuchFile):
        registry.file(1)
    with pytest.raises(NoSuchVersion):
        registry.version(4)


def test_version_by_block(registry):
    assert registry.version_by_block(40).obj == 4
    assert registry.version_by_block(999) is None


def test_live_version_roots_excludes_aborted(registry):
    registry.version(4).status = "aborted"
    assert registry.live_version_roots() == {10}


def test_serialize_roundtrip(registry):
    raw = registry.serialize()
    back = FileRegistry.deserialize(raw)
    assert set(back.files) == {1, 2}
    assert back.file(2).is_super
    assert back.file(1).secret == 111
    # Versions are deliberately not persisted.
    assert back.versions == {}


def test_deserialize_rejects_garbage():
    with pytest.raises(Exception):
        FileRegistry.deserialize(b"NOPE" + b"\x00" * 16)


def test_restore_from_adopts_files(registry):
    raw = registry.serialize()
    fresh = FileRegistry()
    fresh.restore_from(FileRegistry.deserialize(raw))
    assert fresh.file(1).entry_block == 10
    assert fresh.fresh_obj() > 2
