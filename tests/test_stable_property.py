"""Property test: the companion pair never diverges, under any interleaving.

Hypothesis drives arbitrary interleavings of multi-step write operations
through both halves of a stable pair (the begin/finish decomposition of
the companion-first protocol).  Whatever the schedule and whichever
operations collide and retry, the invariant holds: when all operations
have completed or aborted, both disks hold identical bytes for every
allocated block, and every block holds a value some completed operation
actually wrote.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import CompanionConflict
from repro.block.stable import StablePair
from repro.sim.network import Network

# Each planned operation: (which half, which block slot, payload tag).
op_strategy = st.tuples(
    st.sampled_from(["a", "b"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=255),
)


@settings(max_examples=150, deadline=None)
@given(
    ops=st.lists(op_strategy, min_size=1, max_size=8),
    schedule=st.lists(st.integers(min_value=0, max_value=15), max_size=40),
)
def test_pair_never_diverges(ops, schedule):
    network = Network()
    pair = StablePair(network, 0xB00, capacity=256, block_size=64)
    # Pre-allocate the block slots both halves will fight over.
    blocks = [pair.a.cmd_allocate_write(1, b"init%d" % i) for i in range(4)]

    # Launch every operation to its begin step, interleaved by `schedule`:
    # each schedule entry picks which pending operation to advance.
    pending: list[dict] = []
    for half_name, slot, tag in ops:
        pending.append(
            {
                "half": pair.a if half_name == "a" else pair.b,
                "block": blocks[slot],
                "data": b"val-%03d" % tag,
                "state": "new",
                "op": None,
            }
        )

    completed: list[dict] = []
    steps = iter(schedule)
    # Drive until every operation has completed or aborted; when the
    # schedule runs dry, finish the rest round-robin.
    guard = 0
    while any(p["state"] in ("new", "begun") for p in pending):
        guard += 1
        assert guard < 1000
        live = [p for p in pending if p["state"] in ("new", "begun")]
        try:
            pick = live[next(steps) % len(live)]
        except StopIteration:
            pick = live[0]
        if pick["state"] == "new":
            try:
                pick["op"] = pick["half"].begin_write(
                    1, pick["block"], pick["data"]
                )
                pick["state"] = "begun"
            except CompanionConflict:
                pick["state"] = "aborted"  # collided: a real client retries
        else:
            pick["half"].finish_op(pick["op"])
            pick["state"] = "done"
            completed.append(pick)

    # Invariant 1: both disks agree on every block.
    assert pair.consistent()
    # Invariant 2: every block holds the initial value or the payload of
    # an operation that actually completed.
    legal = {blocks[i]: {b"init%d" % i} for i in range(4)}
    for p in completed:
        legal[p["block"]].add(p["data"])
    for block in blocks:
        value = pair.disk_a.read(block)
        assert value in legal[block], f"block {block} holds unwritten data {value!r}"
    # Invariant 3: the LAST completed write per block is what is stored
    # (completion order is the serialisation order of the pair).
    last: dict[int, bytes] = {}
    for p in completed:
        last[p["block"]] = p["data"]
    for block, expected in last.items():
        assert pair.disk_a.read(block) == expected
