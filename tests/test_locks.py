"""Lock-field primitives: atomic test-both-set-one semantics (§5.3)."""

import pytest

from repro.core.locks import LockSnapshot
from repro.core.page import Page
from repro.core.store import PageStore
from repro.block.stable import StableClient, StablePair
from repro.sim.network import Network


@pytest.fixture
def store():
    net = Network()
    StablePair(net, 0x700, capacity=128, block_size=33000)
    return PageStore(StableClient(net, "fs", 0x700, account=1))


@pytest.fixture
def version_block(store):
    block = store.store_new(Page(is_version_page=True, data=b"v"))
    store.flush()
    return block


def test_read_fresh_snapshot(store, version_block):
    locks = store
    from repro.core.locks import LockOps

    ops = LockOps(store)
    snap = ops.read(version_block)
    assert snap == LockSnapshot(0, 0)
    assert not snap.any_locked


def test_set_top_small_file_rule(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    snap = ops.read(version_block)
    assert ops.set_top(version_block, snap, 0xAAA)
    assert ops.read(version_block).top == 0xAAA
    # Another small update overwrites the hint (it is only a hint).
    snap2 = ops.read(version_block)
    assert ops.set_top(version_block, snap2, 0xBBB)
    assert ops.read(version_block).top == 0xBBB


def test_set_top_fails_on_stale_snapshot(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    snap = ops.read(version_block)
    ops.set_top(version_block, snap, 0xAAA)
    # Using the stale (pre-set) snapshot must fail.
    assert not ops.set_top(version_block, snap, 0xCCC)


def test_set_top_refused_when_inner_locked(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    assert ops.set_inner(version_block, 0x111)
    snap = ops.read(version_block)
    assert not ops.set_top(version_block, snap, 0xAAA)


def test_set_top_exclusive_super_file_rule(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    assert ops.set_top_exclusive(version_block, 0xAAA)
    # A second super update cannot take it.
    assert not ops.set_top_exclusive(version_block, 0xBBB)
    assert ops.read(version_block).top == 0xAAA


def test_set_inner_requires_both_clear(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    snap = ops.read(version_block)
    ops.set_top(version_block, snap, 0xAAA)  # a small update's hint
    # Super-file update must wait out the top lock before entering.
    assert not ops.set_inner(version_block, 0x111)
    ops.clear_top_if(version_block, 0xAAA)
    assert ops.set_inner(version_block, 0x111)
    assert not ops.set_inner(version_block, 0x222)


def test_clear_if_checks_holder(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    snap = ops.read(version_block)
    ops.set_top(version_block, snap, 0xAAA)
    assert not ops.clear_top_if(version_block, 0xBBB)
    assert ops.read(version_block).top == 0xAAA
    assert ops.clear_top_if(version_block, 0xAAA)
    assert ops.read(version_block).top == 0


def test_force_clear(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    ops.set_top_exclusive(version_block, 0xAAA)
    ops.set_inner(version_block, 0x111) or None
    ops.force_clear_top(version_block)
    ops.force_clear_inner(version_block)
    snap = ops.read(version_block)
    assert snap == LockSnapshot(0, 0)
    # Idempotent on clear fields.
    ops.force_clear_top(version_block)
    ops.force_clear_inner(version_block)


def test_lock_fields_survive_on_disk(store, version_block):
    from repro.core.locks import LockOps

    ops = LockOps(store)
    snap = ops.read(version_block)
    ops.set_top(version_block, snap, 0xABCDEF)
    page = Page.from_bytes(store.blocks.read(version_block))
    assert page.top_lock == 0xABCDEF
