"""Protection end-to-end: forgery, replay, restriction, cross-service.

The capability model's promises, checked through the full stack rather
than against the issuer alone.
"""

import pytest

from repro.capability import (
    ALL_RIGHTS,
    Capability,
    CapabilityIssuer,
    RIGHT_COMMIT,
    RIGHT_READ,
    RIGHT_WRITE,
    new_port,
)
from repro.errors import (
    BadCapability,
    InsufficientRights,
    NotBlockOwner,
)
from repro.core.pathname import PagePath
from repro.core.registry import FileRegistry
from repro.core.service import FileService
from repro.client.api import FileClient

ROOT = PagePath.ROOT


def test_guessing_object_numbers_gains_nothing(fs):
    """Knowing that file 1 exists does not let you build its capability."""
    cap = fs.create_file(b"secret")
    for guess in range(0, 2**16, 4099):
        forged = Capability(cap.port, cap.obj, ALL_RIGHTS, guess)
        with pytest.raises(BadCapability):
            fs.current_version(forged)


def test_version_capability_cannot_open_other_versions(fs):
    """A version capability is for that version only."""
    cap = fs.create_file(b"v0")
    h1 = fs.create_version(cap)
    fs.write_page(h1.version, ROOT, b"v1")
    fs.commit(h1.version)
    h2 = fs.create_version(cap)
    # Splicing h1's check onto h2's object is a forgery.
    spliced = Capability(h2.version.port, h2.version.obj, h1.version.rights, h1.version.check)
    with pytest.raises(BadCapability):
        fs.read_page(spliced, ROOT)
    fs.abort(h2.version)


def test_capability_replay_at_wrong_service(cluster):
    """A capability from one file service is rejected by another (different
    port, different secrets)."""
    other = FileService(
        "other",
        cluster.network,
        FileRegistry(),
        CapabilityIssuer(new_port(cluster.rng)),
        cluster.block_port,
        account=2,
    )
    cap = cluster.fs().create_file(b"mine")
    with pytest.raises(BadCapability):
        other.current_version(cap)


def test_restricted_chain_monotone(cluster, fs):
    """Restriction can only shrink rights, even through several hops."""
    cap = fs.create_file(b"x")
    rw = cluster.issuer.restrict(cap, RIGHT_READ | RIGHT_WRITE)
    r = cluster.issuer.restrict(rw, RIGHT_READ)
    with pytest.raises(InsufficientRights):
        cluster.issuer.restrict(r, RIGHT_READ | RIGHT_COMMIT)
    # And the widened-by-hand version is a forgery.
    widened = Capability(r.port, r.obj, ALL_RIGHTS, r.check)
    with pytest.raises(BadCapability):
        fs.create_version(widened)


def test_write_rights_checked_on_every_page_command(cluster, fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    read_only_version = cluster.issuer.restrict(handle.version, RIGHT_READ)
    assert fs.read_page(read_only_version, ROOT) == b"x"
    for forbidden in (
        lambda: fs.write_page(read_only_version, ROOT, b"y"),
        lambda: fs.append_page(read_only_version, ROOT, b"y"),
        lambda: fs.make_hole(read_only_version, PagePath.of(0)),
    ):
        with pytest.raises(InsufficientRights):
            forbidden()
    fs.abort(handle.version)


def test_block_layer_protection_under_the_service(cluster):
    """Even a party who learns raw block numbers cannot read them without
    the service's account."""
    from repro.block.stable import StableClient

    cap = cluster.fs().create_file(b"protected")
    block = cluster.registry.file(cap.obj).entry_block
    intruder = StableClient(cluster.network, "intruder", cluster.block_port, account=666)
    with pytest.raises(NotBlockOwner):
        intruder.read(block)
    with pytest.raises(NotBlockOwner):
        intruder.write(block, b"vandalism")
    with pytest.raises(NotBlockOwner):
        intruder.free(block)


def test_revoked_file_rejects_old_capabilities(cluster, fs):
    cap = fs.create_file(b"x")
    fs.delete_file(cap)
    with pytest.raises(BadCapability):
        fs.current_version(cap)
    with pytest.raises(BadCapability):
        fs.create_version(cap)


def test_capabilities_survive_transit_as_bytes(fs):
    """Pack/unpack (how capabilities live inside pages and directories)
    preserves validity; flipping any byte breaks it."""
    cap = fs.create_file(b"x")
    packed = cap.pack()
    restored = Capability.unpack(packed)
    assert fs.current_version(restored) is not None
    for position in range(len(packed)):
        tampered_bytes = bytearray(packed)
        tampered_bytes[position] ^= 0x01
        tampered = Capability.unpack(bytes(tampered_bytes))
        if tampered is None:
            continue
        with pytest.raises(BadCapability):
            fs.current_version(tampered)
