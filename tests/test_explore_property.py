"""Hypothesis property: random interleavings keep histories serializable.

Two concurrent cross-conflicting updates (classic write skew: A reads
page 0 and writes page 1, B reads page 1 and writes page 0) run against a
live garbage collector under schedules drawn by hypothesis.  Whatever the
interleaving, the recorded history must pass :func:`check_history` — the
OCC serialisability test forces one of a conflicting pair to abort, and
aborts must leave no trace.  The companion test proves the property has
teeth: with the serialisability test stubbed out (the soak harness's
``blind_serialise_mutant``) both updates commit and the checker objects.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gc import GarbageCollector
from repro.core.pathname import PagePath
from repro.errors import CommitConflict, ReproError
from repro.sim.explore import ExploreScheduler, blind_serialise_mutant
from repro.testbed import build_cluster
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT
N_PAGES = 3


def _update(fs, cap, read_page, write_page, payload):
    handle = fs.create_version(cap)
    yield
    fs.read_page(handle.version, PagePath.of(read_page))
    yield
    fs.write_page(handle.version, PagePath.of(write_page), payload)
    yield
    try:
        fs.commit(handle.version)
    except CommitConflict:
        fs.abort(handle.version)
    yield


def _gc(fs):
    try:
        yield from GarbageCollector(fs).run_incremental()
    except ReproError:
        pass


def _deploy():
    history = HistoryRecorder()
    cluster = build_cluster(seed=5, history=history)
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(N_PAGES):
        fs.append_page(setup.version, ROOT, b"init%d" % i)
    fs.commit(setup.version)

    sched = ExploreScheduler()
    sched.spawn("A", _update(fs, cap, 0, 1, b"A-wrote"))
    sched.spawn("B", _update(fs, cap, 1, 0, b"B-wrote"))
    sched.spawn("gc", _gc(fs))
    return history, fs, cap, sched


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_random_interleavings_stay_serializable(seed):
    history, fs, cap, sched = _deploy()
    sched.run_random(random.Random(seed))
    result = check_history(history)
    assert result.ok, [f"{v.kind}: {v.detail}" for v in result.violations]
    assert result.committed_versions >= 3  # create + setup + >=1 update
    # The survivor's write (at least one of the pair commits) is visible.
    current = fs.current_version(cap)
    pages = {fs.read_page(current, PagePath.of(i)) for i in range(N_PAGES)}
    assert pages & {b"A-wrote", b"B-wrote"}


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), max_size=24))
def test_chosen_interleavings_stay_serializable(picks):
    """Same property, with hypothesis steering the schedule directly
    (caller-supplied order; exhausted orders fall back to round-robin)."""
    history, fs, cap, sched = _deploy()
    sched.run(order=iter(picks))
    result = check_history(history)
    assert result.ok, [f"{v.kind}: {v.detail}" for v in result.violations]


def test_mutant_double_commit_is_flagged():
    """With the serialisability test disabled, strict alternation makes
    both conflicting updates read before either commits — both commit,
    and the history checker must call the lost update out."""
    history, fs, cap, sched = _deploy()
    with blind_serialise_mutant():
        sched.run(order=iter([0, 1] * 12))
    result = check_history(history)
    assert not result.ok
    assert any(v.kind == "non-serializable-read" for v in result.violations)
