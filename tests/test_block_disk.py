"""The simulated disk: atomic writes, crashes, corruption, write-once media."""

import pytest

from repro.errors import (
    BlockTooLarge,
    CorruptBlock,
    DiskCrashed,
    DiskFull,
    NoSuchBlock,
    WriteOnceViolation,
)
from repro.sim.clock import LogicalClock
from repro.block.disk import SimDisk


@pytest.fixture
def disk():
    return SimDisk(capacity=16, block_size=64, clock=LogicalClock())


def test_write_read_roundtrip(disk):
    disk.write(1, b"hello")
    assert disk.read(1) == b"hello"


def test_read_unwritten_block(disk):
    with pytest.raises(NoSuchBlock):
        disk.read(3)


def test_write_out_of_range(disk):
    with pytest.raises(NoSuchBlock):
        disk.write(17, b"x")
    with pytest.raises(NoSuchBlock):
        disk.write(0, b"x")  # block 0 is the nil reference


def test_write_too_large(disk):
    with pytest.raises(BlockTooLarge):
        disk.write(1, b"x" * 65)


def test_overwrite_allowed_on_magnetic(disk):
    disk.write(1, b"a")
    disk.write(1, b"b")
    assert disk.read(1) == b"b"
    assert disk.stats.overwrites == 1


def test_write_once_forbids_overwrite():
    disk = SimDisk(4, 64, write_once=True)
    disk.write(1, b"a")
    with pytest.raises(WriteOnceViolation):
        disk.write(1, b"b")


def test_write_once_erase_is_noop():
    disk = SimDisk(4, 64, write_once=True)
    disk.write(1, b"a")
    disk.erase(1)
    assert disk.read(1) == b"a"


def test_crash_makes_disk_inaccessible(disk):
    disk.write(1, b"a")
    disk.crash()
    with pytest.raises(DiskCrashed):
        disk.read(1)
    with pytest.raises(DiskCrashed):
        disk.write(2, b"b")


def test_restore_preserves_contents(disk):
    disk.write(1, b"survivor")
    disk.crash()
    disk.restore()
    assert disk.read(1) == b"survivor"


def test_corruption_detected_on_read(disk):
    disk.write(1, b"precious")
    disk.corrupt(1)
    with pytest.raises(CorruptBlock):
        disk.read(1)


def test_rewrite_heals_corruption(disk):
    disk.write(1, b"data")
    disk.corrupt(1)
    disk.write(1, b"data")
    assert disk.read(1) == b"data"


def test_erase_frees_block(disk):
    disk.write(1, b"x")
    disk.erase(1)
    assert not disk.holds(1)
    with pytest.raises(NoSuchBlock):
        disk.read(1)
    assert disk.first_free(1) == 1


def test_first_free_skips_written(disk):
    disk.write(1, b"a")
    disk.write(2, b"b")
    assert disk.first_free() == 3
    assert disk.first_free(2) == 3


def test_disk_full():
    disk = SimDisk(2, 64)
    disk.write(1, b"a")
    disk.write(2, b"b")
    with pytest.raises(DiskFull):
        disk.first_free()


def test_io_advances_clock(disk):
    before = disk.clock.now
    disk.write(1, b"a")
    after_write = disk.clock.now
    disk.read(1)
    assert after_write > before
    assert disk.clock.now > after_write


def test_stats_counting(disk):
    disk.write(1, b"a")
    disk.read(1)
    disk.erase(1)
    assert disk.stats.writes == 1
    assert disk.stats.reads == 1
    assert disk.stats.frees == 1
    delta = disk.stats.delta(disk.stats.snapshot())
    assert delta.reads == 0 and delta.writes == 0
