"""The page layout of Figure 3: serialisation, references, size limits."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.capability import CapabilityIssuer, new_port
from repro.errors import PageTooLarge, ReferenceTableFull
from repro.core.flags import Flags
from repro.core.page import (
    COMMIT_REF_OFFSET,
    HEADER_SIZE,
    MAX_BLOCK,
    NIL,
    PAGE_BODY_SIZE,
    Page,
    PageRef,
    REF_SIZE,
    pack_commit_ref,
)

_issuer = CapabilityIssuer(new_port(random.Random(5)))


def _cap():
    return _issuer.mint()


def test_pageref_packs_28_plus_4_bits():
    ref = PageRef(MAX_BLOCK, Flags(c=True, r=True, w=True, s=True, m=True))
    word = ref.encode()
    assert word < 2**32
    assert PageRef.decode(word) == ref


def test_pageref_rejects_oversized_block():
    with pytest.raises(ValueError):
        PageRef(MAX_BLOCK + 1)


def test_nil_reference():
    assert PageRef(NIL).is_nil
    assert not PageRef(1).is_nil


def test_empty_page_roundtrip():
    page = Page()
    assert Page.from_bytes(page.to_bytes()).data == b""


def test_full_header_roundtrip():
    page = Page(
        file_cap=_cap(),
        version_cap=_cap(),
        commit_ref=1234,
        top_lock=0xAA55,
        inner_lock=0x55AA,
        parent_ref=77,
        base_ref=88,
        root_flags=Flags(c=True, s=True),
        is_version_page=True,
        refs=[PageRef(5, Flags(c=True, w=True)), PageRef(NIL)],
        data=b"payload",
    )
    back = Page.from_bytes(page.to_bytes())
    assert back.file_cap == page.file_cap
    assert back.version_cap == page.version_cap
    assert back.commit_ref == 1234
    assert back.top_lock == 0xAA55
    assert back.inner_lock == 0x55AA
    assert back.parent_ref == 77
    assert back.base_ref == 88
    assert back.root_flags == Flags(c=True, s=True)
    assert back.is_version_page
    assert back.refs == page.refs
    assert back.data == b"payload"


def test_commit_ref_at_fixed_offset():
    """The TAS protocol depends on the commit reference's byte position."""
    page = Page(commit_ref=0x01020304)
    raw = page.to_bytes()
    assert raw[COMMIT_REF_OFFSET:COMMIT_REF_OFFSET + 4] == b"\x01\x02\x03\x04"
    assert pack_commit_ref(0x01020304) == b"\x01\x02\x03\x04"


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        Page.from_bytes(b"XX" + b"\x00" * 200)


def test_body_size_accounting():
    page = Page(refs=[PageRef(1)] * 3, data=b"abcd")
    assert page.body_size == 3 * REF_SIZE + 4


def test_page_too_large():
    page = Page(data=b"x" * (PAGE_BODY_SIZE + 1))
    with pytest.raises(PageTooLarge):
        page.check_fits()
    with pytest.raises(PageTooLarge):
        page.to_bytes()


def test_refs_and_data_share_the_page():
    """"The remaining space in a page can be occupied by references." """
    refs = [PageRef(1)] * 10
    page = Page(refs=refs, data=b"x" * (PAGE_BODY_SIZE - 10 * REF_SIZE))
    page.check_fits()
    page.data += b"y"
    with pytest.raises(PageTooLarge):
        page.check_fits()


def test_append_ref_enforces_capacity():
    page = Page(data=b"x" * (PAGE_BODY_SIZE - REF_SIZE))
    page.append_ref(PageRef(1))
    with pytest.raises(ReferenceTableFull):
        page.append_ref(PageRef(2))


def test_insert_remove_ref():
    page = Page(refs=[PageRef(1), PageRef(3)])
    page.insert_ref(1, PageRef(2))
    assert [r.block for r in page.refs] == [1, 2, 3]
    removed = page.remove_ref(0)
    assert removed.block == 1
    assert [r.block for r in page.refs] == [2, 3]


def test_clear_access_flags_resets_everything():
    page = Page(
        refs=[PageRef(1, Flags(c=True, r=True, w=True, s=True, m=True))]
    )
    page.clear_access_flags()
    assert page.refs[0] == PageRef(1, Flags())


def test_clone_is_independent():
    page = Page(refs=[PageRef(1)], data=b"orig")
    twin = page.clone()
    twin.refs.append(PageRef(2))
    twin.data = b"changed"
    assert page.nrefs == 1
    assert page.data == b"orig"


def test_serialized_size_is_header_plus_body():
    page = Page(refs=[PageRef(1)] * 5, data=b"abc")
    assert len(page.to_bytes()) == HEADER_SIZE + 5 * REF_SIZE + 3


flag_strategy = st.sampled_from(Flags.all_valid())
ref_strategy = st.builds(
    PageRef, st.integers(min_value=0, max_value=MAX_BLOCK), flag_strategy
)


@settings(max_examples=50)
@given(
    refs=st.lists(ref_strategy, max_size=20),
    data=st.binary(max_size=500),
    commit_ref=st.integers(min_value=0, max_value=MAX_BLOCK),
    base_ref=st.integers(min_value=0, max_value=MAX_BLOCK),
    top=st.integers(min_value=0, max_value=2**64 - 1),
    version=st.booleans(),
)
def test_roundtrip_property(refs, data, commit_ref, base_ref, top, version):
    page = Page(
        commit_ref=commit_ref,
        base_ref=base_ref,
        top_lock=top,
        refs=refs,
        data=data,
        is_version_page=version,
        root_flags=Flags(c=True),
    )
    back = Page.from_bytes(page.to_bytes())
    assert back.refs == refs
    assert back.data == data
    assert back.commit_ref == commit_ref
    assert back.base_ref == base_ref
    assert back.top_lock == top
    assert back.is_version_page == version
