"""Caching (§5.4): server page cache, client cache, validation."""

import pytest

from repro.core.cache import ClientFileCache, PageCache
from repro.core.page import Page
from repro.core.pathname import PagePath
from repro.client.api import FileClient

ROOT = PagePath.ROOT


# ---------------------------------------------------------------------------
# the server-side page cache
# ---------------------------------------------------------------------------


def test_page_cache_hit_miss_accounting():
    cache = PageCache(capacity=4)
    page = Page(data=b"x")
    assert cache.get(1) is None
    cache.put(1, page)
    assert cache.get(1) is page
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_page_cache_lru_eviction():
    cache = PageCache(capacity=2)
    cache.put(1, Page(data=b"1"))
    cache.put(2, Page(data=b"2"))
    cache.get(1)  # 1 is now most recent
    cache.put(3, Page(data=b"3"))  # evicts 2
    assert cache.get(2) is None
    assert cache.get(1) is not None
    assert cache.get(3) is not None


def test_page_cache_invalidate():
    cache = PageCache(capacity=2)
    cache.put(1, Page(data=b"1"))
    cache.invalidate(1)
    assert cache.get(1) is None
    assert cache.stats.invalidations == 1
    cache.invalidate(99)  # absent: no count
    assert cache.stats.invalidations == 1


def test_page_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PageCache(capacity=0)


def test_page_cache_stats_exact_under_thread_barrage():
    """Counter updates happen under ``_mutex``: a barrage of concurrent
    gets against concurrent puts must account for every single call.
    (Regression: hits/misses were read-modify-written outside the lock
    and lost increments on the async transport's lock-free read path.)"""
    import sys
    import threading

    cache = PageCache(capacity=64)
    cache.put(1, Page(data=b"present"))
    threads, per_thread = 8, 4000
    start = threading.Barrier(threads)

    def barrage(churn_key):
        start.wait()
        for _ in range(per_thread):
            cache.get(1)  # hit
            cache.get(999)  # miss
            cache.put(churn_key, Page(data=b"churn"))
            cache.invalidate(churn_key)

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # force frequent preemption
    try:
        workers = [
            threading.Thread(target=barrage, args=(100 + i,))
            for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    finally:
        sys.setswitchinterval(old_interval)
    assert cache.stats.hits == threads * per_thread
    assert cache.stats.misses == threads * per_thread
    assert cache.stats.invalidations == threads * per_thread


def test_page_cache_stat_updates_run_under_the_mutex():
    """Deterministic form of the lost-update regression: a stats object
    whose read-modify-write window is widened with a sleep (a GIL yield
    point) loses increments unless ``get`` updates it while holding
    ``_mutex``.  On the GIL'd interpreter the raw race above only bites
    at loop back-edges, so this pins the locking discipline directly."""
    import threading
    import time

    class WideWindowStats:
        """CacheStats with a yawning gap between reading ``hits``/
        ``misses`` and storing the incremented value."""

        invalidations = 0
        evictions = 0

        def __init__(self):
            self._hits = 0
            self._misses = 0

        @property
        def hits(self):
            value = self._hits
            time.sleep(0.0005)  # yield mid increment
            return value

        @hits.setter
        def hits(self, value):
            self._hits = value

        @property
        def misses(self):
            value = self._misses
            time.sleep(0.0005)
            return value

        @misses.setter
        def misses(self, value):
            self._misses = value

    cache = PageCache(capacity=8)
    cache.stats = WideWindowStats()
    cache.put(1, Page(data=b"x"))
    threads, per_thread = 4, 25
    start = threading.Barrier(threads)

    def barrage():
        start.wait()
        for _ in range(per_thread):
            cache.get(1)  # hit
            cache.get(999)  # miss

    workers = [threading.Thread(target=barrage) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert cache.stats.hits == threads * per_thread
    assert cache.stats.misses == threads * per_thread


# ---------------------------------------------------------------------------
# the server-side validation command
# ---------------------------------------------------------------------------


def test_validate_cache_null_op_for_unshared_file(fs):
    """"For files that are not shared [...] the serialisability test is a
    null operation, and all pages in the cache will always be valid."""
    cap = fs.create_file(b"private")
    cached = fs.current_version(cap)
    discards, current = fs.validate_cache(cap, cached)
    assert discards == []
    assert current.obj == cached.obj


def test_validate_cache_reports_written_paths(fs):
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(4):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    cached = fs.current_version(cap)
    # Someone else writes child 2.
    other = fs.create_version(cap)
    fs.write_page(other.version, PagePath.of(2), b"changed")
    fs.commit(other.version)
    discards, current = fs.validate_cache(cap, cached)
    assert discards == [PagePath.of(2)]
    assert current.obj != cached.obj


def test_validate_cache_accumulates_across_versions(fs):
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(4):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    cached = fs.current_version(cap)
    for page in (0, 3):
        other = fs.create_version(cap)
        fs.write_page(other.version, PagePath.of(page), b"new")
        fs.commit(other.version)
    discards, _ = fs.validate_cache(cap, cached)
    assert set(discards) == {PagePath.of(0), PagePath.of(3)}


def test_validate_cache_transfers_no_pages(fs, cluster):
    """"It is not necessary to transmit pages while making the
    serialisability test" — an unshared file's validation reads nothing."""
    cap = fs.create_file(b"data")
    cached = fs.current_version(cap)
    fs.store.cache.clear()
    disk = cluster.pair.disk_a
    reads_before = disk.stats.reads + cluster.pair.disk_b.stats.reads
    fs.validate_cache(cap, cached)
    reads_after = disk.stats.reads + cluster.pair.disk_b.stats.reads
    # One fresh read of the version page to see the commit reference; no
    # page-tree pages at all.
    assert reads_after - reads_before <= 1


def test_flag_bits_cache_avoids_tree_reads(fs, cluster):
    """"This allows serialisability tests without having to read the page
    tree": validating against a version committed by this server reads no
    page-tree pages at all — the flag administration is cached."""
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(8):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    cached = fs.current_version(cap)
    writer = fs.create_version(cap)
    fs.write_page(writer.version, PagePath.of(3), b"w")
    fs.commit(writer.version)
    fs.store.cache.clear()  # drop the page cache; keep the flag cache
    disk = cluster.pair.disk_a
    reads_before = disk.stats.reads + cluster.pair.disk_b.stats.reads
    discards, _ = fs.validate_cache(cap, cached)
    reads = disk.stats.reads + cluster.pair.disk_b.stats.reads - reads_before
    assert discards == [PagePath.of(3)]
    # Only the chain-walk reads of the two version pages; no tree pages.
    assert reads <= 2


def test_validation_delegated_to_committing_server(cluster2):
    """"It can delegate the task to the server holding the most recent
    version for efficiency": a cold server forwards the test to the server
    whose flag cache is warm, reading no page-tree pages itself."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"root")
    setup = fs0.create_version(cap)
    for i in range(4):
        fs0.append_page(setup.version, ROOT, b"c%d" % i)
    fs0.commit(setup.version)
    cached = fs0.current_version(cap)
    # fs1 commits the write: ITS flag cache is the warm one.
    writer = fs1.create_version(cap)
    fs1.write_page(writer.version, PagePath.of(2), b"w")
    fs1.commit(writer.version)
    fs0.store.cache.clear()
    fs0._write_paths_cache.clear()
    from repro.sim.rpc import Request

    forwarded = []
    cluster2.network.tracer = lambda s, d, p: forwarded.append(
        (s, d, p.command if isinstance(p, Request) else "")
    )
    discards, _ = fs0.validate_cache(cap, cached)
    cluster2.network.tracer = None
    assert discards == [PagePath.of(2)]
    assert ("fs0", "fs1", "validate_cache") in forwarded


def test_validation_falls_back_when_delegate_dead(cluster2):
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"root")
    cached = fs0.current_version(cap)
    writer = fs1.create_version(cap)
    fs1.write_page(writer.version, ROOT, b"w")
    fs1.commit(writer.version)
    fs1.crash()
    fs0._write_paths_cache.clear()
    discards, _ = fs0.validate_cache(cap, cached)
    assert discards == [ROOT]


def test_flag_bits_cache_survives_crash_via_disk(fs, cluster):
    """The flags are also on disk, so a restarted server (empty flag
    cache) computes the same answer by reading the tree."""
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(4):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    cached = fs.current_version(cap)
    writer = fs.create_version(cap)
    fs.write_page(writer.version, PagePath.of(1), b"w")
    fs.commit(writer.version)
    fs.crash()
    fs.restart()
    assert fs._write_paths_cache == {}
    discards, _ = fs.validate_cache(cap, cached)
    assert discards == [PagePath.of(1)]


# ---------------------------------------------------------------------------
# the client-side cache
# ---------------------------------------------------------------------------


def test_client_cache_roundtrip(cluster):
    client = FileClient(cluster.network, "host", cluster.service_port)
    cap = client.create_file(b"v1")
    assert client.read(cap) == b"v1"  # miss, fetch
    messages_before = cluster.network.stats.messages
    assert client.read(cap) == b"v1"  # revalidate (null) + cache hit
    # The hit still costs the validation round trip, but no page read.
    assert client.stats.cache_hits >= 1


def test_client_cache_discard_on_remote_change(cluster, cluster2):
    net = cluster2.network
    writer = FileClient(net, "writer", cluster2.service_port)
    reader = FileClient(net, "reader", cluster2.service_port)
    cap = writer.create_file(b"v1")
    assert reader.read(cap) == b"v1"
    writer.transact(cap, lambda u: u.write(ROOT, b"v2"))
    assert reader.read(cap) == b"v2"  # discard detected via validation
    assert reader.cache.stats.invalidations >= 1


def test_client_cache_entry_management():
    from repro.capability import Capability

    cache = ClientFileCache()
    cap = Capability(1, 2, 3, 4)
    version = Capability(1, 9, 3, 4)
    cache.remember(cap, version, {ROOT: b"root", PagePath.of(1): b"one"})
    assert cache.get(cap, ROOT) == b"root"
    assert cache.get(cap, PagePath.of(2)) is None
    cache.put(cap, PagePath.of(2), b"two")
    assert cache.get(cap, PagePath.of(2)) == b"two"
    cache.drop(cap)
    assert cache.entry(cap) is None


def test_client_cache_discard_kills_subtree():
    from repro.capability import Capability

    cache = ClientFileCache()
    cap = Capability(1, 2, 3, 4)
    v1 = Capability(1, 8, 3, 4)
    v2 = Capability(1, 9, 3, 4)
    cache.remember(
        cap,
        v1,
        {
            PagePath.of(1): b"a",
            PagePath.of(1, 0): b"b",
            PagePath.of(2): b"c",
        },
    )
    dead = cache.apply_discards(cap, [PagePath.of(1)], v2)
    assert dead == 2
    assert cache.get(cap, PagePath.of(2)) == b"c"
    assert cache.entry(cap).version_cap == v2


def test_client_cache_keys_by_port_and_obj():
    """Same object number at two service ports must not collide.
    (Regression: entries were keyed by ``file_cap.obj`` alone.)"""
    from repro.capability import Capability

    cache = ClientFileCache()
    cap_a = Capability(port=1000, obj=7, rights=0xFF, check=1)
    cap_b = Capability(port=2000, obj=7, rights=0xFF, check=2)
    cache.remember(cap_a, Capability(1000, 8, 0xFF, 1), {ROOT: b"service A"})
    cache.remember(cap_b, Capability(2000, 9, 0xFF, 2), {ROOT: b"service B"})
    assert cache.get(cap_a, ROOT) == b"service A"
    assert cache.get(cap_b, ROOT) == b"service B"
    assert len(cache) == 2
    cache.drop(cap_a)
    assert cache.entry(cap_a) is None
    assert cache.get(cap_b, ROOT) == b"service B"


def test_client_cache_no_cross_deployment_collision():
    """End to end: one application cache shared by clients of two
    deployments (a sharded one and a plain one) whose file services
    mint the same object numbers at different ports."""
    from repro.testbed import build_cluster, build_sharded_cluster

    sharded = build_sharded_cluster(shards=2, servers=1, seed=3)
    plain = build_cluster(servers=1, seed=5)
    client_a = FileClient(sharded.network, "app", sharded.service_port)
    client_b = FileClient(plain.network, "app", plain.service_port)
    client_b.cache = client_a.cache  # one shared application cache
    cap_a = client_a.create_file(b"on the sharded service")
    cap_b = client_b.create_file(b"on the plain service")
    assert cap_a.obj == cap_b.obj  # same object number...
    assert cap_a.port != cap_b.port  # ...different service ports
    assert client_a.read(cap_a) == b"on the sharded service"
    assert client_b.read(cap_b) == b"on the plain service"
    # Both reads again, now cache-served: still no cross-talk.
    assert client_a.read(cap_a) == b"on the sharded service"
    assert client_b.read(cap_b) == b"on the plain service"
    assert len(client_a.cache) == 2


def test_client_cache_page_budget_evicts_lru_file():
    from repro.capability import Capability

    cache = ClientFileCache(max_pages=4)
    caps = [Capability(1, obj, 3, 4) for obj in (10, 11, 12)]
    for i, cap in enumerate(caps):
        version = Capability(1, 100 + i, 3, 4)
        cache.remember(
            cap, version, {PagePath.of(0): b"a", PagePath.of(1): b"b"}
        )
    # 3 files x 2 pages against a budget of 4: the least recently used
    # file (the first) is evicted whole.
    assert cache.total_pages <= 4
    assert cache.entry(caps[0]) is None
    assert cache.get(caps[1], PagePath.of(0)) == b"a"
    assert cache.get(caps[2], PagePath.of(0)) == b"a"
    assert cache.stats.evictions == 2  # both pages of the evicted file


def test_client_cache_eviction_follows_recency():
    from repro.capability import Capability

    cache = ClientFileCache(max_pages=2)
    cap_a = Capability(1, 10, 3, 4)
    cap_b = Capability(1, 11, 3, 4)
    cache.remember(cap_a, Capability(1, 100, 3, 4), {ROOT: b"a"})
    cache.remember(cap_b, Capability(1, 101, 3, 4), {ROOT: b"b"})
    cache.get(cap_a, ROOT)  # A is now most recent
    cache.put(cap_b, PagePath.of(1), b"bb")  # B over budget: A evicted
    assert cache.entry(cap_a) is None
    assert cache.get(cap_b, PagePath.of(1)) == b"bb"


def test_client_cache_never_evicts_the_file_being_filled():
    """A single file larger than the whole budget stays cached (the
    eviction loop never removes the most recently used entry)."""
    from repro.capability import Capability

    cache = ClientFileCache(max_pages=2)
    cap = Capability(1, 10, 3, 4)
    pages = {PagePath.of(i): b"p%d" % i for i in range(5)}
    cache.remember(cap, Capability(1, 100, 3, 4), pages)
    assert cache.entry(cap) is not None
    assert cache.get(cap, PagePath.of(4)) == b"p4"
