"""Integration tests: the observability layer watching real commits.

These assert the paper's performance claims as executable facts:

* a non-concurrent commit takes the **fast path** — exactly one
  version-page flush and one test-and-set on the base's commit
  reference (§5.2's "a single block write" critical section);
* a commit whose base moved underneath it takes the **serialise path**
  and records a nested ``serialise`` span;
* a genuine read/write conflict aborts and is tagged as such.
"""

import pytest

from repro.core.pathname import PagePath
from repro.errors import CommitConflict
from repro.obs import Recorder
from repro.testbed import build_cluster

ROOT = PagePath.ROOT


@pytest.fixture()
def recorder():
    return Recorder()


@pytest.fixture()
def cluster(recorder):
    return build_cluster(servers=2, seed=11, recorder=recorder)


def _commit_spans(recorder):
    return recorder.tracer.spans_named("commit")


def test_fast_path_commit_writes_exactly_one_version_page(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"seed")
    recorder.tracer.clear()

    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"uncontended update")
    fs.commit(handle.version)

    (span,) = _commit_spans(recorder)
    assert span.tags["path"] == "fast"
    assert span.tags["rounds"] == 1
    # The §5.2 claim: committing is ONE version-page block write.  The
    # flush runs in a child span of the commit, so search the subtree.
    version_flushes = [
        event
        for sub in span.walk()
        for event in sub.events_named("store.page_flush")
        if event.tags["version_page"]
    ]
    assert len(version_flushes) == 1
    # ...plus one test-and-set on the base's commit reference, which won.
    tas_events = span.events_named("store.tas_commit")
    assert len(tas_events) == 1
    assert tas_events[0].tags["success"] is True
    # No serialisation happened.
    assert span.find("serialise") is None


def test_fast_path_span_sees_through_to_the_disks(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"seed")
    recorder.tracer.clear()

    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"v2")
    fs.commit(handle.version)

    (span,) = _commit_spans(recorder)
    # One logical stable write = two physical disk writes (the pair),
    # and the event stream shows the companion-first order.
    writes = span.events_named("disk.write")
    assert len(writes) >= 2
    assert span.counters["stable.companion_rpc"] >= 1
    assert span.counters["rpc.test_and_set"] == 1


def test_concurrent_disjoint_commit_records_serialise_span(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"seed")
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"page 0")
    fs.append_page(handle.version, ROOT, b"page 1")
    fs.commit(handle.version)
    recorder.tracer.clear()

    first = fs.create_version(cap)
    second = fs.create_version(cap)
    fs.write_page(first.version, PagePath.of(0), b"first's page")
    fs.write_page(second.version, PagePath.of(1), b"second's page")
    fs.commit(first.version)
    fs.commit(second.version)

    first_span, second_span = _commit_spans(recorder)
    assert first_span.tags["path"] == "fast"
    assert second_span.tags["path"] == "serialise"
    assert second_span.tags["rounds"] == 2
    serialise = second_span.find("serialise")
    assert serialise is not None
    assert serialise.tags["ok"] is True
    assert serialise.tags["grafts"] >= 1
    # The serialise round retried the test-and-set: once losing, once
    # winning on the merged version.
    tas = second_span.events_named("store.tas_commit")
    assert [event.tags["success"] for event in tas] == [False, True]


def test_conflicting_commit_tagged_and_aborted(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"seed")
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"page 0")
    fs.commit(handle.version)
    recorder.tracer.clear()

    winner = fs.create_version(cap)
    loser = fs.create_version(cap)
    fs.write_page(winner.version, PagePath.of(0), b"winner")
    fs.read_page(loser.version, PagePath.of(0))  # stale read -> conflict
    fs.commit(winner.version)
    with pytest.raises(CommitConflict):
        fs.commit(loser.version)

    spans = _commit_spans(recorder)
    assert [span.tags["path"] for span in spans] == ["fast", "conflict"]
    conflict = spans[-1]
    serialise = conflict.find("serialise")
    assert serialise is not None
    assert serialise.tags["ok"] is False
    assert recorder.metrics.counter("commit.conflicts").value == 1


def test_commit_ticks_histogram_tracks_every_commit_outcome(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"seed")  # stored directly, not via commit()
    for i in range(3):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"update %d" % i)
        fs.commit(handle.version)

    histogram = recorder.metrics.histogram("commit.ticks")
    assert histogram.count == 3
    assert histogram.min > 0  # every commit costs disk + network ticks
    assert recorder.metrics.counter("commit.committed").value == 3


def test_cache_hit_and_miss_counters(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"cached data")
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"child page")
    fs.commit(handle.version)
    # The creating server's cache was warmed by the flush: reads hit.
    fs.read_page(fs.current_version(cap), ROOT)
    assert recorder.metrics.counter("cache.hits").value >= 1
    # The replica's cache is cold.  Version pages are loaded fresh (their
    # commit reference may have moved), so the miss shows on the child.
    other = cluster.fs(1)
    other.read_page(other.current_version(cap), PagePath.of(0))
    assert recorder.metrics.counter("cache.misses").value >= 1


def test_null_recorder_leaves_no_trace(recorder):
    # Build WITHOUT a recorder: the default no-op must record nothing and
    # the cluster must behave identically.
    plain = build_cluster(servers=1, seed=11)
    fs = plain.fs()
    cap = fs.create_file(b"dark")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"unwatched")
    fs.commit(handle.version)
    assert not plain.recorder.enabled
    assert fs.read_page(fs.current_version(cap), ROOT) == b"unwatched"


def test_rpc_events_carry_port_and_client(cluster, recorder):
    fs = cluster.fs()
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"y")
    fs.commit(handle.version)
    (span,) = recorder.tracer.spans_named("commit")
    # Block writes happen inside the commit's nested flush span.
    writes = [e for sub in span.walk() for e in sub.events_named("rpc.write")]
    assert writes, "commit must issue at least one block-write RPC"
    assert writes[0].tags["client"] == fs.name
    assert writes[0].tags["port"] == cluster.block_port
