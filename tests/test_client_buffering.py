"""The client-side write-behind buffer (§5.4, client half)."""

import pytest

from repro.core.pathname import PagePath
from repro.client.api import FileClient

ROOT = PagePath.ROOT


@pytest.fixture
def buffered_client(cluster):
    return FileClient(
        cluster.network, "bufhost", cluster.service_port, buffer_writes=True
    )


def test_buffered_writes_reach_commit(buffered_client):
    cap = buffered_client.create_file(b"v0")
    update = buffered_client.begin(cap)
    update.write(ROOT, b"v1")
    update.write(ROOT, b"v2")
    update.commit()
    assert buffered_client.read(cap) == b"v2"


def test_read_your_buffered_write(buffered_client):
    cap = buffered_client.create_file(b"v0")
    update = buffered_client.begin(cap)
    update.write(ROOT, b"pending")
    assert update.read(ROOT) == b"pending"  # served locally
    update.abort()
    assert buffered_client.read(cap) == b"v0"


def test_rewrites_cross_network_once(cluster, buffered_client):
    cap = buffered_client.create_file(b"v0")
    update = buffered_client.begin(cap)
    before = cluster.network.stats.messages
    for n in range(15):
        update.write(ROOT, b"draft%d" % n)
    writes_traffic = cluster.network.stats.messages - before
    assert writes_traffic == 0  # nothing crossed the network yet
    update.commit()
    assert buffered_client.read(cap) == b"draft14"


def test_buffer_flushes_before_structural_ops(buffered_client):
    cap = buffered_client.create_file(b"root")
    update = buffered_client.begin(cap)
    update.write(ROOT, b"rootdata")
    child = update.append_page(ROOT, b"child")  # forces a flush first
    assert update._buffered == {}
    update.write(child, b"child2")
    update.commit()
    assert buffered_client.read(cap) == b"rootdata"
    assert buffered_client.read(cap, child) == b"child2"


def test_abort_discards_buffer(buffered_client, cluster):
    cap = buffered_client.create_file(b"keep")
    update = buffered_client.begin(cap)
    before = cluster.network.stats.messages
    update.write(ROOT, b"junk1")
    update.write(ROOT, b"junk2")
    # The junk never crossed the network...
    assert cluster.network.stats.messages == before
    update.abort()
    # ...and the abort dropped it without shipping it either.
    assert update._buffered == {}
    assert buffered_client.read(cap) == b"keep"


def test_buffered_updates_still_conflict_correctly(cluster, buffered_client):
    """Buffering must not weaken validation: a buffered read-modify-write
    racing another writer still conflicts and redoes."""
    other = FileClient(cluster.network, "other", cluster.service_port)
    cap = buffered_client.create_file(b"0")

    update = buffered_client.begin(cap)
    value = int(update.read(ROOT))  # a real server-side read: R flag set
    other.transact(cap, lambda u: u.write(ROOT, b"100"))
    update.write(ROOT, b"%d" % (value + 1))
    from repro.errors import CommitConflict

    with pytest.raises(CommitConflict):
        update.commit()
    assert buffered_client.read(cap) == b"100"


def test_per_update_override(cluster):
    client = FileClient(cluster.network, "host", cluster.service_port)
    cap = client.create_file(b"x")
    update = client.begin(cap, buffer_writes=True)
    before = cluster.network.stats.messages
    update.write(ROOT, b"y")
    assert cluster.network.stats.messages == before
    update.commit()
    assert client.read(cap) == b"y"
