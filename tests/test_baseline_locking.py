"""The XDFS-style 2PL baseline: locks, intentions lists, recovery."""

import pytest

from repro.errors import BaselineError, TransactionAborted
from repro.baselines.locking import (
    VULNERABLE_AGE,
    LockingFileService,
    WouldBlock,
)
from repro.testbed import build_cluster


@pytest.fixture
def setup():
    cluster = build_cluster(seed=5)
    service = LockingFileService("lk", cluster.network, cluster.block_port, 9)
    file_id = service.create_file([b"p0", b"p1", b"p2"])
    return cluster, service, file_id


def test_transactional_read_write(setup):
    _, svc, fid = setup
    txn = svc.open_transaction()
    assert svc.read(txn, fid, 0) == b"p0"
    svc.write(txn, fid, 1, b"new1")
    assert svc.read(txn, fid, 1) == b"new1"  # own writes visible
    svc.close_transaction(txn)
    assert svc.read_committed(fid, 1) == b"new1"


def test_abort_discards_buffered_writes(setup):
    _, svc, fid = setup
    txn = svc.open_transaction()
    svc.write(txn, fid, 0, b"junk")
    svc.abort_transaction(txn)
    assert svc.read_committed(fid, 0) == b"p0"
    with pytest.raises(TransactionAborted):
        svc.read(txn, fid, 0)


def test_read_locks_are_shared(setup):
    _, svc, fid = setup
    t1, t2 = svc.open_transaction(), svc.open_transaction()
    assert svc.read(t1, fid, 0) == b"p0"
    assert svc.read(t2, fid, 0) == b"p0"
    svc.close_transaction(t1)
    svc.close_transaction(t2)


def test_iwrite_locks_exclusive(setup):
    _, svc, fid = setup
    t1, t2 = svc.open_transaction(), svc.open_transaction()
    svc.write(t1, fid, 0, b"t1")
    with pytest.raises(WouldBlock):
        svc.write(t2, fid, 0, b"t2")
    svc.close_transaction(t1)
    svc.write(t2, fid, 0, b"t2")
    svc.close_transaction(t2)
    assert svc.read_committed(fid, 0) == b"t2"


def test_read_compatible_with_iwrite(setup):
    """XDFS semantics: readers coexist with intention-writers; only the
    commit upgrade excludes them."""
    _, svc, fid = setup
    writer, reader = svc.open_transaction(), svc.open_transaction()
    svc.write(writer, fid, 0, b"pending")
    assert svc.read(reader, fid, 0) == b"p0"  # pre-commit state
    with pytest.raises(WouldBlock):
        svc.close_transaction(writer)  # commit lock blocked by reader
    svc.close_transaction(reader)
    svc.close_transaction(writer)
    assert svc.read_committed(fid, 0) == b"pending"


def test_vulnerable_lock_prodding(setup):
    """"When a server has locked a datum for some time [...] another
    server, waiting on that lock, can then prod the first."""
    cluster, svc, fid = setup
    old = svc.open_transaction()
    svc.write(old, fid, 0, b"slow")
    cluster.clock.advance(VULNERABLE_AGE + 1)
    young = svc.open_transaction()
    svc.write(young, fid, 0, b"fast")  # prod aborts the stale holder
    svc.close_transaction(young)
    assert svc.stats_aborted_by_prod == 1
    with pytest.raises(TransactionAborted):
        svc.read(old, fid, 0)


def test_prod_ignored_while_committing(setup):
    """"If it is in a state to do so, it releases its lock, otherwise it
    ignores the prod" — a committing transaction is not wounded."""
    cluster, svc, fid = setup
    committer = svc.open_transaction()
    svc.write(committer, fid, 0, b"c")
    reader = svc.open_transaction()
    svc.read(reader, fid, 0)
    with pytest.raises(WouldBlock):
        svc.close_transaction(committer)  # now in committing state
    cluster.clock.advance(VULNERABLE_AGE + 1)
    intruder = svc.open_transaction()
    with pytest.raises(WouldBlock):
        svc.write(intruder, fid, 0, b"i")  # prod ignored: still blocked
    assert svc.stats_aborted_by_prod == 0
    svc.close_transaction(reader)
    svc.close_transaction(committer)


def test_recovery_replays_intentions(setup):
    """Crash after the intentions list is durable but before cleanup:
    recovery REDOes the list."""
    cluster, svc, fid = setup
    txn = svc.open_transaction()
    svc.write(txn, fid, 0, b"committed-data")
    t = svc._txns[txn]
    t.status = "committing"
    for key in sorted(t.intentions):
        svc._acquire(t, key, "commit")
    svc._write_intentions(t)  # durable
    svc.crash()  # died before applying
    report = svc.recover()
    assert report["intentions_replayed"] == 1
    assert svc.read_committed(fid, 0) == b"committed-data"


def test_recovery_clears_locks_and_rolls_back(setup):
    """Crash with open transactions: their locks are cleared and buffered
    updates discarded — recovery work OCC does not have."""
    cluster, svc, fid = setup
    t1 = svc.open_transaction()
    svc.write(t1, fid, 0, b"lost")
    t2 = svc.open_transaction()
    svc.read(t2, fid, 1)
    svc.crash()
    report = svc.recover()
    assert report["locks_cleared"] >= 2
    assert report["transactions_rolled_back"] == 2
    assert svc.read_committed(fid, 0) == b"p0"
    fresh = svc.open_transaction()
    svc.write(fresh, fid, 0, b"after")
    svc.close_transaction(fresh)


def test_unknown_transaction(setup):
    _, svc, fid = setup
    with pytest.raises(BaselineError):
        svc.read(99, fid, 0)
    with pytest.raises(BaselineError):
        svc.read(svc.open_transaction(), 42, 0)


def test_commit_twice_rejected(setup):
    _, svc, fid = setup
    txn = svc.open_transaction()
    svc.write(txn, fid, 0, b"x")
    svc.close_transaction(txn)
    with pytest.raises(BaselineError):
        svc.close_transaction(txn)
