"""Live shard migration: streaming, cutover atomicity, and the edge
cases that lose data in real systems.

The protocol under test (``repro.block.rebalance``): arm dirty tracking,
pre-copy the manifest while traffic runs, drain deltas in bounded
rounds, then one atomic fence — retire the source, copy the remainder,
unregister the port, bump the placement epoch.  These tests drive it
under concurrent client workloads, injected crashes, and in-flight
commits, and hold the results to the history checker's stale-placement
invariant: nothing is ever served by a shard after its cutover.
"""

from __future__ import annotations

import random

import pytest

from repro.block.rebalance import migrate_steps
from repro.capability import new_port
from repro.client.api import FileClient
from repro.core.pathname import PagePath
from repro.errors import PlacementStale, ReproError
from repro.sim.sched import Scheduler
from repro.testbed import build_sharded_cluster
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT


def _workload_cluster(shards=3, servers=2, seed=5, files=3, pages=3, **kwargs):
    history = HistoryRecorder()
    cluster = build_sharded_cluster(
        shards=shards, servers=servers, seed=seed, shard_capacity=64,
        history=history, **kwargs
    )
    fs = cluster.fs()
    caps = []
    for i in range(files):
        cap = fs.create_file(b"file %d" % i)
        handle = fs.create_version(cap)
        for j in range(pages):
            fs.append_page(handle.version, ROOT, b"page %d.%d" % (i, j))
        fs.commit(handle.version)
        caps.append(cap)
    return cluster, history, caps


def _client_script(client, caps, pages, rng, ops, tally):
    for opno in range(ops):
        cap = caps[rng.randrange(len(caps))]
        path = PagePath.of(rng.randrange(pages))
        yield
        if rng.random() < 0.5:
            client.read(cap, path)
            continue
        update = client.begin(cap)
        update.read(path)
        yield
        update.write(path, b"%s-op%d" % (client.node.encode(), opno))
        yield
        try:
            update.commit()
            tally["commits"] += 1
        except ReproError:
            tally["conflicts"] += 1
            if not update.done:
                update.abort()
    return None


def test_live_migration_under_concurrent_workload():
    """The tentpole end-to-end: clients read and commit throughout the
    migration; the cutover is one epoch bump; the history checker sees
    the cutover event and zero stale serves; no commit is lost."""
    cluster, history, caps = _workload_cluster()
    service = cluster.shards
    source = service.pairs[0]
    rng = random.Random("rebalance-workload")
    tally = {"commits": 0, "conflicts": 0}

    scheduler = Scheduler()
    for ci in range(3):
        client = FileClient(
            cluster.network, f"reb-c{ci}", cluster.service_port, history=history
        )
        scheduler.spawn(
            f"reb-c{ci}",
            _client_script(
                client, caps, 3, random.Random(f"reb-{ci}"), 12, tally
            ),
        )
    done = {}

    def migrator():
        done["report"] = yield from migrate_steps(
            service, 0, new_port(cluster.rng), history=history
        )

    scheduler.spawn("migrator", migrator())
    scheduler.run()

    report = done["report"]
    assert report.epoch == 2
    assert service.placement.epoch == 2
    assert report.blocks_streamed > 0
    assert tally["commits"] > 0
    # The retired pair refuses service with the typed staleness error.
    with pytest.raises(PlacementStale):
        source.a.cmd_read(account=1, block_no=1)
    # Every committed page reads back through the new map.
    fs = cluster.fs()
    for cap in caps:
        current = fs.current_version(cap)
        for j in range(3):
            fs.read_page(current, PagePath.of(j))
    assert service.consistent()
    result = check_history(history)
    assert result.ok, result.violations()
    assert result.cutovers_seen == 1
    assert result.shard_serves_checked > 0


def test_commit_in_flight_during_drain_lands_or_retries_never_forks():
    """A commit racing the drain either lands before the fence (its
    blocks travel via the dirty set) or hits ``PlacementStale`` and
    retries against the new shard — but the version chain never forks:
    every committed page is durable on exactly the live pair."""
    cluster, history, caps = _workload_cluster(shards=2, servers=1, seed=9)
    service = cluster.shards
    fs = cluster.fs()
    cap = caps[0]

    steps = migrate_steps(service, 0, new_port(cluster.rng), history=history)
    # Enter the pre-copy: a few streaming steps happen, traffic still runs.
    for _ in range(3):
        next(steps)
    # An in-flight commit lands mid-drain — after the manifest snapshot,
    # so only the dirty set can save these writes.
    handle = fs.create_version(cap)
    fs.write_page(handle.version, PagePath.of(0), b"racing the drain")
    fs.commit(handle.version)
    # Drive the migration to completion (drain + fence).
    report = None
    try:
        while True:
            next(steps)
    except StopIteration as stop:
        report = stop.value
    assert report.epoch == 2
    # The racing commit is readable through the new placement...
    assert (
        fs.read_page(fs.current_version(cap), PagePath.of(0))
        == b"racing the drain"
    )
    # ...and a post-cutover commit goes to the new pair only.
    handle = fs.create_version(cap)
    fs.write_page(handle.version, PagePath.of(1), b"after the bump")
    fs.commit(handle.version)
    assert (
        fs.read_page(fs.current_version(cap), PagePath.of(1)) == b"after the bump"
    )
    result = check_history(history)
    assert result.ok, result.violations()


def test_stale_block_client_heals_with_bounded_retries():
    """A client still holding the epoch-1 map gets ``PlacementStale``
    from the retired pair, refetches, and completes — transparently."""
    cluster, history, caps = _workload_cluster(shards=2, servers=1, seed=11)
    service = cluster.shards
    stale = service.client("stale-node", 7)
    block = stale.allocate_write(b"written before the reshape")
    service.migrate(0, new_port(cluster.rng))
    assert service.placement.epoch == 2
    # The client's cached map is stale; reads and writes heal in place.
    assert stale.read(block) == b"written before the reshape"
    stale.write(block, b"updated after the reshape")
    assert stale.read(block) == b"updated after the reshape"
    assert stale.placement.epoch == 2


def test_expired_lease_and_stale_placement_compose():
    """A leased read whose lease expired *during* the migration must
    revalidate through a server whose own block client needs a placement
    refresh — both staleness layers heal in one read, and the history
    checker holds the lease bound and the cutover invariant together."""
    cluster, history, caps = _workload_cluster(shards=2, servers=1, seed=13)
    service = cluster.shards
    client = FileClient(
        cluster.network,
        "leased",
        cluster.service_port,
        history=history,
        lease_ticks=80,
    )
    cap = caps[0]
    assert client.read(cap, PagePath.of(0)) == b"page 0.0"  # grants the lease
    # The migration's streaming traffic advances the clock well past the
    # lease TTL, and the cutover retires the pair the lease's pages came
    # from.
    report = service.migrate(0, new_port(cluster.rng), history=history)
    assert report.epoch == 2
    assert cluster.clock.now > 80
    assert client.read(cap, PagePath.of(0)) == b"page 0.0"
    # A post-migration update invalidates and re-reads cleanly too.
    client.transact(cap, lambda u: u.write(PagePath.of(0), b"fresh"))
    assert client.read(cap, PagePath.of(0)) == b"fresh"
    result = check_history(history)
    assert result.ok, result.violations()
    assert result.cutovers_seen == 1


def test_abort_under_crash_leaves_map_and_data_untouched():
    """Both source halves die mid-stream: the migration aborts, the
    placement map never bumps, the half-built target is discarded, and
    after recovery a retry completes."""
    cluster, history, caps = _workload_cluster(shards=2, servers=1, seed=17)
    service = cluster.shards
    source = service.pairs[0]
    fs = cluster.fs()
    target_port = new_port(cluster.rng)

    steps = migrate_steps(service, 0, target_port, history=history)
    for _ in range(2):
        next(steps)
    source.a.crash()
    source.b.crash()
    with pytest.raises(ReproError):
        while True:
            next(steps)
    assert service.placement.epoch == 1
    assert len(service.pairs) == 2
    assert service.pairs[0] is source
    assert not service.retired_pairs
    # Recover the pair; data still served by the original shard.
    for half in source.halves():
        half.restart()
    for half in source.halves():
        half.resync()
    assert fs.read_page(fs.current_version(caps[0]), PagePath.of(0)) == b"page 0.0"
    # The retry (fresh target port) completes.
    report = service.migrate(0, new_port(cluster.rng), history=history)
    assert report.epoch == 2
    assert fs.read_page(fs.current_version(caps[0]), PagePath.of(0)) == b"page 0.0"
    result = check_history(history)
    assert result.ok, result.violations()


def test_half_restart_mid_migration_forces_full_reconcile():
    """A source half that crashes and restarts while the dirty set is
    armed invalidates in-memory tracking — the fence must re-stream the
    whole final manifest instead of trusting the delta."""
    cluster, history, caps = _workload_cluster(shards=2, servers=1, seed=19)
    service = cluster.shards
    source = service.pairs[0]
    fs = cluster.fs()

    steps = migrate_steps(service, 0, new_port(cluster.rng), history=history)
    for _ in range(2):
        next(steps)
    # Lose and recover one half mid-stream: its dirty set is gone.
    source.a.crash()
    next(steps)
    source.a.restart()
    source.a.resync()
    # A commit in the window the dead half missed.
    handle = fs.create_version(caps[0])
    fs.write_page(handle.version, PagePath.of(1), b"while a was down")
    fs.commit(handle.version)
    report = None
    try:
        while True:
            next(steps)
    except StopIteration as stop:
        report = stop.value
    assert report.full_reconcile
    assert report.epoch == 2
    assert (
        fs.read_page(fs.current_version(caps[0]), PagePath.of(1))
        == b"while a was down"
    )
    result = check_history(history)
    assert result.ok, result.violations()


def test_checker_flags_serve_after_cutover():
    """The stale-placement invariant has teeth: a synthetic history where
    a shard answers a read *after* its own cutover is flagged."""
    history = HistoryRecorder()
    history.record("cutover", actor="rebalancer", base=0xBEEF, version=2, tick=10)
    history.record(
        "shard_serve", actor="laggard", path="read", base=0xBEEF, version=1, tick=11
    )
    result = check_history(history)
    assert not result.ok
    assert any(v.kind == "stale-placement" for v in result.violations)
    # The reverse order (serve, then cutover) is the legal one.
    clean = HistoryRecorder()
    clean.record(
        "shard_serve", actor="ontime", path="read", base=0xBEEF, version=1, tick=9
    )
    clean.record("cutover", actor="rebalancer", base=0xBEEF, version=2, tick=10)
    ok = check_history(clean)
    assert ok.ok, ok.violations()
    assert ok.cutovers_seen == 1
    assert ok.shard_serves_checked == 1


def test_rebalance_soak_smoke():
    """One full soak with a mid-workload migration under fault injection:
    serialisable history, clean fsck, and the migration observable."""
    from repro.sim.explore import SoakConfig, run_soak

    report = run_soak(SoakConfig(seed=1, ops=90, shards=2, rebalance=True))
    assert report.ok, report.violations()
    assert report.rebalances + report.rebalance_aborts >= 1
    assert "--rebalance" in report.repro_line()
    assert report.check.cutovers_seen == report.rebalances


def test_rebalance_soak_requires_sharded_topology():
    from repro.sim.explore import SoakConfig, run_soak

    with pytest.raises(ValueError):
        run_soak(SoakConfig(seed=1, ops=10, shards=0, rebalance=True))


def test_split_then_migrate_preserves_routing():
    """A split immediately followed by a migration of the new range:
    two epoch bumps, every page still readable, balance audit clean."""
    cluster, history, caps = _workload_cluster(shards=2, servers=1, seed=23)
    service = cluster.shards
    fs = cluster.fs()
    service.split(0, new_port(cluster.rng))
    assert service.placement.epoch == 2
    index = 1  # the new range sits right after its source
    report = service.migrate(index, new_port(cluster.rng), history=history)
    assert report.epoch == 3
    for cap in caps:
        current = fs.current_version(cap)
        for j in range(3):
            fs.read_page(current, PagePath.of(j))
    # New allocations land and read back under the final map.
    handle = fs.create_version(caps[0])
    fs.write_page(handle.version, PagePath.of(0), b"post-reshape write")
    fs.commit(handle.version)
    assert (
        fs.read_page(fs.current_version(caps[0]), PagePath.of(0))
        == b"post-reshape write"
    )
    assert service.consistent()
