"""The SWALLOW-style timestamp-ordered baseline."""

import pytest

from repro.errors import BaselineError, TimestampConflict, TransactionAborted
from repro.baselines.timestamp import TimestampFileService
from repro.testbed import build_cluster


@pytest.fixture
def setup():
    cluster = build_cluster(seed=5)
    service = TimestampFileService("ts", cluster.network, cluster.block_port, 9)
    file_id = service.create_file([b"p0", b"p1"])
    return cluster, service, file_id


def test_read_write_commit(setup):
    _, svc, fid = setup
    txn = svc.open_transaction()
    assert svc.read(txn, fid, 0) == b"p0"
    svc.write(txn, fid, 0, b"new")
    assert svc.read(txn, fid, 0) == b"new"
    svc.close_transaction(txn)
    assert svc.read_committed(fid, 0) == b"new"


def test_older_writer_aborted_after_younger_read(setup):
    """A later reader recorded its stamp: an earlier writer must abort."""
    _, svc, fid = setup
    old = svc.open_transaction()
    young = svc.open_transaction()
    svc.read(young, fid, 0)
    with pytest.raises(TimestampConflict):
        svc.write(old, fid, 0, b"too late")
    with pytest.raises(TransactionAborted):
        svc.read(old, fid, 0)


def test_older_writer_aborted_after_younger_write(setup):
    _, svc, fid = setup
    old = svc.open_transaction()
    young = svc.open_transaction()
    svc.write(young, fid, 0, b"young")
    svc.close_transaction(young)
    with pytest.raises(TimestampConflict):
        svc.write(old, fid, 0, b"old")


def test_multiversion_reads_never_block(setup):
    """An old reader sees the version visible at its pseudo time even
    after newer commits — reads are never rejected."""
    _, svc, fid = setup
    old_reader = svc.open_transaction()
    writer = svc.open_transaction()
    svc.write(writer, fid, 0, b"v2")
    svc.close_transaction(writer)
    assert svc.read(old_reader, fid, 0) == b"p0"
    svc.close_transaction(old_reader)


def test_commit_installs_atomically(setup):
    _, svc, fid = setup
    txn = svc.open_transaction()
    svc.write(txn, fid, 0, b"a")
    svc.write(txn, fid, 1, b"b")
    # Not visible before commit.
    assert svc.read_committed(fid, 0) == b"p0"
    svc.close_transaction(txn)
    assert svc.read_committed(fid, 0) == b"a"
    assert svc.read_committed(fid, 1) == b"b"


def test_commit_validation_catches_late_conflicts(setup):
    _, svc, fid = setup
    old = svc.open_transaction()
    svc.write(old, fid, 0, b"buffered")  # passes: nothing newer yet
    young = svc.open_transaction()
    svc.read(young, fid, 0)  # young read stamps the page
    with pytest.raises(TimestampConflict):
        svc.close_transaction(old)


def test_prune_drops_old_versions(setup):
    _, svc, fid = setup
    for n in range(3):
        txn = svc.open_transaction()
        svc.write(txn, fid, 0, b"v%d" % n)
        svc.close_transaction(txn)
    freed = svc.prune(keep=1)
    assert freed >= 3  # older versions of page 0 (and page 1's initial twin)
    assert svc.read_committed(fid, 0) == b"v2"


def test_conflict_counter(setup):
    _, svc, fid = setup
    old = svc.open_transaction()
    young = svc.open_transaction()
    svc.read(young, fid, 0)
    with pytest.raises(TimestampConflict):
        svc.write(old, fid, 0, b"x")
    assert svc.stats_conflicts == 1


def test_unknown_handles(setup):
    _, svc, fid = setup
    with pytest.raises(BaselineError):
        svc.read(77, fid, 0)
    txn = svc.open_transaction()
    with pytest.raises(BaselineError):
        svc.read(txn, 99, 0)
