"""Logical clock behaviour."""

import pytest

from repro.sim.clock import LogicalClock


def test_starts_at_zero():
    assert LogicalClock().now == 0


def test_advance_accumulates():
    clock = LogicalClock()
    clock.advance(5)
    clock.advance(7)
    assert clock.now == 12


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        LogicalClock().advance(-1)


def test_timestamps_strictly_increase_without_time_passing():
    clock = LogicalClock()
    stamps = [clock.timestamp() for _ in range(100)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 100


def test_timestamps_order_with_time():
    clock = LogicalClock()
    early = clock.timestamp()
    clock.advance(1)
    late = clock.timestamp()
    assert early < late


def test_reset():
    clock = LogicalClock()
    clock.advance(10)
    clock.timestamp()
    clock.reset()
    assert clock.now == 0
