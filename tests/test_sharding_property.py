"""Hypothesis properties for the ShardMap placement arithmetic.

The placement map is the one piece of the sharded deployment that every
participant — clients, servers, the allocator, fsck — must agree on, and
it is pure arithmetic, so it gets property coverage: every global block
number lands on exactly one shard (total coverage, no overlap), the
global/local split round-trips, and placement of existing blocks is
*stable* when a deployment is rebuilt with more shards (growing a
deployment must not strand data on the wrong pair).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.sharding import ShardMap

shard_counts = st.integers(min_value=1, max_value=64)
strides = st.integers(min_value=1, max_value=10_000)


@st.composite
def map_and_block(draw):
    """A ShardMap plus a global block number inside its range."""
    shards = draw(shard_counts)
    stride = draw(strides)
    block = draw(st.integers(min_value=1, max_value=shards * stride))
    return ShardMap(shards, stride), block


@given(map_and_block())
def test_every_block_lands_on_exactly_one_shard(case):
    """Total coverage without overlap: shard_of is a function defined on
    the whole 1..shards*stride range, and its preimages partition it."""
    shard_map, block = case
    shard = shard_map.shard_of(block)
    assert 0 <= shard < shard_map.shards
    # The shard's own range contains the block — and no other shard's
    # range does, because the ranges are disjoint by construction.
    low = shard * shard_map.stride + 1
    high = (shard + 1) * shard_map.stride
    assert low <= block <= high


@given(map_and_block())
def test_global_local_round_trip(case):
    shard_map, block = case
    shard = shard_map.shard_of(block)
    local = shard_map.local_of(block)
    assert 1 <= local <= shard_map.stride
    assert shard_map.global_of(shard, local) == block


@given(
    shards=shard_counts,
    stride=strides,
    local=st.integers(min_value=1, max_value=10_000),
)
def test_local_global_round_trip(shards, stride, local):
    """The other direction: splicing a valid local number into the global
    namespace and mapping back recovers both coordinates."""
    shard_map = ShardMap(shards, stride)
    if local > stride:
        with pytest.raises(ValueError):
            shard_map.global_of(0, local)
        return
    for shard in {0, shards - 1}:
        block = shard_map.global_of(shard, local)
        assert shard_map.shard_of(block) == shard
        assert shard_map.local_of(block) == local


@given(case=map_and_block(), extra=st.integers(min_value=1, max_value=64))
def test_placement_is_stable_when_shards_are_added(case, extra):
    """Growth stability: a map with more shards (same stride) places
    every pre-existing block exactly where the smaller map did, so a
    deployment can add pairs without moving a single page."""
    shard_map, block = case
    grown = ShardMap(shard_map.shards + extra, shard_map.stride)
    assert grown.shard_of(block) == shard_map.shard_of(block)
    assert grown.local_of(block) == shard_map.local_of(block)


@given(map_and_block())
@settings(max_examples=30)
def test_shard_of_agrees_with_exhaustive_range_walk(case):
    """shard_of against the ground truth on the block's neighbourhood:
    walking the range boundaries around the block never skips or doubles
    a number."""
    shard_map, block = case
    shard = shard_map.shard_of(block)
    boundary = shard * shard_map.stride  # last block of the previous shard
    if boundary >= 1:
        assert shard_map.shard_of(boundary) == shard - 1
    next_boundary = (shard + 1) * shard_map.stride
    if next_boundary < shard_map.shards * shard_map.stride:
        assert shard_map.shard_of(next_boundary + 1) == shard + 1


@given(shards=shard_counts, stride=strides)
def test_out_of_range_blocks_are_rejected(shards, stride):
    shard_map = ShardMap(shards, stride)
    with pytest.raises(ValueError):
        shard_map.shard_of(shards * stride + 1)
    with pytest.raises(ValueError):
        shard_map.shard_of(0)
