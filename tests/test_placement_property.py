"""Property tests for the epoch-versioned placement map.

Hypothesis drives arbitrary sequences of ``split_at`` / ``moved``
reshapes over an initial placement and holds the routing invariants the
rest of the system leans on:

* every block in the covered space maps to exactly one live shard range
  at every epoch (no gaps, no overlaps, ever);
* local/global block-number translation round-trips through any reshape;
* epochs only march forward, one bump per reshape;
* the wire codec round-trips any reachable placement map bit-for-bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.block.sharding import PlacementMap, ShardRange
from repro.errors import UnknownShard

STRIDE = 64


def _ports(n: int) -> list[int]:
    return [0x1000 + 16 * i for i in range(n)]


# A reshape program: each step either splits a (randomly picked) range or
# moves one to a fresh port.  Ports are drawn from a disjoint pool so a
# move can never collide with a serving port.
reshape_strategy = st.lists(
    st.tuples(
        st.sampled_from(["split", "move"]),
        st.integers(min_value=0, max_value=10_000),  # range picker
        st.integers(min_value=1, max_value=STRIDE - 1),  # split offset
    ),
    max_size=8,
)


def apply_reshapes(placement: PlacementMap, program) -> list[PlacementMap]:
    """Run a reshape program, returning every epoch's map (index 0 = the
    initial map).  Steps that cannot apply (splitting a 1-block range)
    are skipped — Hypothesis shrinks around them."""
    maps = [placement]
    fresh_port = 0x9000
    for kind, picker, offset in program:
        current = maps[-1]
        index = picker % len(current.ranges)
        r = current.ranges[index]
        if kind == "split":
            cut = r.lo + (offset % max(1, r.size))
            if cut <= r.lo or cut > r.hi:
                continue
            maps.append(current.split_at(index, cut, fresh_port))
        else:
            maps.append(current.moved(index, fresh_port))
        fresh_port += 16
    return maps


@settings(max_examples=200, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=5),
    program=reshape_strategy,
)
def test_every_block_maps_to_exactly_one_live_shard(shards, program):
    initial = PlacementMap.initial(_ports(shards), stride=STRIDE)
    maps = apply_reshapes(initial, program)
    space = shards * STRIDE
    for epoch, placement in enumerate(maps, start=1):
        assert placement.epoch == epoch  # one bump per reshape, no skips
        # Exactly-one: the bisect lookup agrees with a linear containment
        # scan, and the scan finds exactly one range.
        for block in range(1, space + 1):
            owners = [r for r in placement.ranges if block in r]
            assert len(owners) == 1
            assert placement.range_of(block) is owners[0]
        # No range leaks outside the covered space.
        assert placement.ranges[0].lo == 1
        assert placement.ranges[-1].hi == space
        for left, right in zip(placement.ranges, placement.ranges[1:]):
            assert left.hi + 1 == right.lo
        # Ports stay unique.
        ports = [r.port for r in placement.ranges]
        assert len(ports) == len(set(ports))


@settings(max_examples=200, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=4),
    program=reshape_strategy,
    block=st.integers(min_value=1, max_value=4 * STRIDE),
)
def test_local_global_translation_round_trips(shards, program, block):
    initial = PlacementMap.initial(_ports(shards), stride=STRIDE)
    placement = apply_reshapes(initial, program)[-1]
    if block > shards * STRIDE:
        with pytest.raises(UnknownShard):
            placement.range_of(block)
        return
    r = placement.range_of(block)
    local = r.local_of(block)
    assert 1 <= local <= r.size
    assert r.global_of(local) == block
    # The map-level helpers agree with the range-level ones.
    assert placement.local_of(block) == local
    assert placement.port_of(block) == r.port
    assert placement.ranges[placement.index_of(block)] is r


@settings(max_examples=150, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=4),
    program=reshape_strategy,
)
def test_wire_codec_round_trips_any_reachable_map(shards, program):
    from repro.net.wire import decode_value, encode_value

    initial = PlacementMap.initial(_ports(shards), stride=STRIDE)
    for placement in apply_reshapes(initial, program):
        blob = bytes(encode_value(placement))
        decoded = decode_value(blob)
        assert decoded == placement
        assert decoded.epoch == placement.epoch
        assert decoded.ranges == placement.ranges


@settings(max_examples=100, deadline=None)
@given(
    lo=st.integers(min_value=1, max_value=1000),
    size=st.integers(min_value=1, max_value=1000),
    probe=st.integers(min_value=-2000, max_value=4000),
)
def test_range_membership_matches_translation(lo, size, probe):
    r = ShardRange(lo, lo + size - 1, 0xABC)
    if probe in r:
        assert r.global_of(r.local_of(probe)) == probe
    else:
        with pytest.raises(UnknownShard):
            r.local_of(probe)


def test_validation_rejects_malformed_maps():
    ports = _ports(2)
    with pytest.raises(ValueError):
        PlacementMap(0, (ShardRange(1, 8, ports[0]),))  # epoch < 1
    with pytest.raises(ValueError):
        PlacementMap(1, ())  # empty
    with pytest.raises(ValueError):
        PlacementMap(1, (ShardRange(1, 8, ports[0]), ShardRange(8, 16, ports[1])))
    # A gap is legal (those blocks simply route nowhere) — the reshape
    # operations never create one, as the property above proves.
    gapped = PlacementMap(1, (ShardRange(1, 8, ports[0]), ShardRange(10, 16, ports[1])))
    with pytest.raises(UnknownShard):
        gapped.range_of(9)
    with pytest.raises(ValueError):
        PlacementMap(1, (ShardRange(1, 8, ports[0]), ShardRange(9, 16, ports[0])))
    with pytest.raises(ValueError):
        PlacementMap(1, (ShardRange(8, 1, ports[0]),))  # inverted
