"""Service metrics: the counters benchmarks and operators read."""

import pytest

from repro.errors import CommitConflict
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


def test_basic_counters(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.read_page(handle.version, ROOT)
    fs.write_page(handle.version, ROOT, b"y")
    fs.commit(handle.version)
    metrics = fs.metrics
    assert metrics.files_created == 1
    assert metrics.versions_created >= 1
    assert metrics.pages_read == 1
    assert metrics.pages_written == 1
    assert metrics.commits == 1
    assert metrics.fast_commits == 1
    assert metrics.merged_commits == 0


def test_merge_and_conflict_counters(fs):
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(3):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    # A merged commit.
    va = fs.create_version(cap)
    vb = fs.create_version(cap)
    fs.write_page(va.version, PagePath.of(0), b"A")
    fs.write_page(vb.version, PagePath.of(1), b"B")
    fs.commit(va.version)
    fs.commit(vb.version)
    assert fs.metrics.merged_commits == 1
    assert fs.metrics.serialise_runs >= 1
    assert fs.metrics.serialise_pages_visited >= 1
    # A conflicted commit.
    vc = fs.create_version(cap)
    vd = fs.create_version(cap)
    fs.read_page(vd.version, PagePath.of(2))
    fs.write_page(vc.version, PagePath.of(2), b"C")
    fs.write_page(vd.version, PagePath.of(0), b"D")
    fs.commit(vc.version)
    with pytest.raises(CommitConflict):
        fs.commit(vd.version)
    assert fs.metrics.conflicts == 1


def test_abort_counter(fs):
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.abort(handle.version)
    assert fs.metrics.aborts == 1
    # A conflict-driven removal is counted as a conflict, not an abort.
    assert fs.metrics.conflicts == 0
