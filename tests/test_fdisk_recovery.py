"""Crash-point recovery: FDisk survives process death at every syscall
boundary the write paths cross.

Each test arms a :class:`FaultingFDisk` to die at one of
:data:`CRASH_POINTS`, runs an operation over a seeded store, then re-opens
a plain :class:`FDisk` on the same root — exactly what a restarted process
does — and asserts the recovered state is *prefix-consistent*:

* every acknowledged operation survives byte-for-byte;
* the in-flight operation lands in the deterministic outcome its crash
  point implies (old value before the journal sync, new value after);
* nothing ever reads back as silent garbage.
"""

from __future__ import annotations

import pytest

from repro.block.fdisk import (
    CRASH_POINTS,
    FDisk,
    FaultingFDisk,
    ProcessDied,
    measure_sync_cost,
)
from repro.errors import NoSuchBlock

CAP, BLK = 64, 256

# Acked baseline installed before every crash: four blocks plus one
# acknowledged overwrite of block 2.
ACKED = {1: b"one", 2: b"two-v2", 3: b"three", 4: b"four"}

# Deterministic expected outcome of the in-flight op, per crash point.
# The journal sync is the ack point: everything before it recovers to the
# old state, everything at-or-after replays to the new state.
WRITE_OUTCOME = {
    "journal.before_append": "old",
    "journal.mid_append": "old",  # torn record → CRC truncation
    "journal.before_sync": "old",  # volatile cache lost
    "journal.after_sync": "new",
    "block.before_temp": "new",  # replay re-materialises
    "block.after_temp": "new",  # stray .tmp discarded, then replay
    "block.after_rename": "new",
}

ERASE_OUTCOME = {
    "journal.before_append": "present",
    "journal.mid_append": "present",
    "journal.before_sync": "present",
    "journal.after_sync": "absent",  # replay re-runs the unlink
    "erase.after_unlink": "absent",
}

# How many entries of a 3-write batch survive, per crash point.  The batch
# shares ONE sync: before it nothing (or a flushed record prefix) lands,
# after it the whole batch replays.
BATCH = [(5, b"batch-five"), (6, b"batch-six"), (2, b"two-v3")]
BATCH_OUTCOME = {
    "journal.before_append": 0,
    "journal.mid_append": 0,
    "batch.mid_records": 1,  # record 0 flushed whole → journal prefix
    "journal.before_sync": 0,
    "journal.after_sync": 3,
    "block.before_temp": 3,
    "block.after_temp": 3,
    "block.after_rename": 3,
    "batch.mid_materialize": 3,
}


def test_crash_point_matrix_is_exhaustive():
    """Every enumerated crash point is exercised by some scenario below."""
    covered = set(WRITE_OUTCOME) | set(ERASE_OUTCOME) | set(BATCH_OUTCOME)
    assert covered == set(CRASH_POINTS)


def _seed(disk) -> None:
    disk.write(1, b"one")
    disk.write(2, b"two-v1")
    disk.write(3, b"three")
    disk.write(4, b"four")
    disk.write(2, b"two-v2")  # acked overwrite


def _value(disk, block_no):
    try:
        return disk.read(block_no)
    except NoSuchBlock:
        return None


def _assert_acked(disk, skip=()) -> None:
    for block_no, payload in ACKED.items():
        if block_no in skip:
            continue
        assert disk.read(block_no) == payload, f"acked block {block_no} lost"


@pytest.mark.parametrize("point", sorted(WRITE_OUTCOME))
@pytest.mark.parametrize("target", ["overwrite", "fresh"])
def test_write_crash_recovers_prefix(tmp_path, point, target):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    block_no, old = (2, ACKED[2]) if target == "overwrite" else (5, None)
    new = b"in-flight"
    disk.arm(point)
    with pytest.raises(ProcessDied):
        disk.write(block_no, new)
    assert disk.dead

    recovered = FDisk(tmp_path / "d", CAP, BLK)
    _assert_acked(recovered, skip={block_no})
    expected = new if WRITE_OUTCOME[point] == "new" else old
    assert _value(recovered, block_no) == expected
    recovered.close()


@pytest.mark.parametrize("point", sorted(ERASE_OUTCOME))
def test_erase_crash_recovers_prefix(tmp_path, point):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    disk.arm(point)
    with pytest.raises(ProcessDied):
        disk.erase(2)

    recovered = FDisk(tmp_path / "d", CAP, BLK)
    _assert_acked(recovered, skip={2})
    if ERASE_OUTCOME[point] == "present":
        assert recovered.read(2) == ACKED[2]
    else:
        assert _value(recovered, 2) is None
        assert not recovered.holds(2)
    recovered.close()


@pytest.mark.parametrize("point", sorted(BATCH_OUTCOME))
def test_write_many_crash_recovers_batch_prefix(tmp_path, point):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    disk.arm(point)
    with pytest.raises(ProcessDied):
        disk.write_many(BATCH)

    recovered = FDisk(tmp_path / "d", CAP, BLK)
    applied = BATCH_OUTCOME[point]
    _assert_acked(recovered, skip={b for b, _ in BATCH[:applied]})
    for i, (block_no, payload) in enumerate(BATCH):
        if i < applied:
            assert recovered.read(block_no) == payload
        else:
            # untouched: the old value (block 2) or still absent (5, 6)
            assert _value(recovered, block_no) == ACKED.get(block_no)
    recovered.close()


def test_ack_point_semantics(tmp_path):
    """An operation that RETURNED was acked and must survive — countdown=2
    lets one write pass through the armed point before the next one dies."""
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    disk.arm("journal.before_sync", countdown=2)
    disk.write(5, b"acked")  # reaches the point once, survives
    with pytest.raises(ProcessDied):
        disk.write(6, b"never-acked")

    recovered = FDisk(tmp_path / "d", CAP, BLK)
    _assert_acked(recovered)
    assert recovered.read(5) == b"acked"
    assert _value(recovered, 6) is None
    recovered.close()


def test_dead_disk_refuses_everything(tmp_path):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    disk.write(1, b"x")
    disk.arm("journal.after_sync")
    with pytest.raises(ProcessDied):
        disk.write(2, b"y")
    for op in (
        lambda: disk.read(1),
        lambda: disk.write(3, b"z"),
        lambda: disk.erase(1),
        lambda: disk.write_many([(3, b"z")]),
    ):
        with pytest.raises(ProcessDied):
            op()


def test_owner_map_and_intentions_survive_crash(tmp_path):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    disk.write(1, b"x")
    disk.set_owner(1, 7)
    disk.set_owner(9, 8)
    disk.clear_owner(9)
    disk.add_intention("write", 7, 9, b"payload")
    disk.add_intention("reserve", 7, 10)
    disk.add_intention("free", 7, 11)
    disk.ack_intentions(1)  # the companion applied the first one
    disk.arm("journal.before_sync")
    with pytest.raises(ProcessDied):
        disk.write(2, b"y")

    recovered = FDisk(tmp_path / "d", CAP, BLK)
    assert recovered.recovered_owners() == {1: 7}
    assert recovered.recovered_intentions() == [
        ("reserve", 7, 10, b""),
        ("free", 7, 11, b""),
    ]
    recovered.close()


def test_checkpoint_then_crash_keeps_compacted_state(tmp_path):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    disk.set_owner(3, 9)
    disk.add_intention("write", 9, 3, b"later")
    disk.checkpoint()
    assert disk.journal_compactions == 1
    disk.arm("journal.before_sync")
    with pytest.raises(ProcessDied):
        disk.write(5, b"post-checkpoint")

    recovered = FDisk(tmp_path / "d", CAP, BLK)
    _assert_acked(recovered)
    assert _value(recovered, 5) is None
    assert recovered.recovered_owners() == {3: 9}
    assert recovered.recovered_intentions() == [("write", 9, 3, b"later")]
    recovered.close()


def test_torn_tail_is_truncated_once(tmp_path):
    disk = FaultingFDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    disk.arm("journal.mid_append")
    with pytest.raises(ProcessDied):
        disk.write(5, b"torn")

    first = FDisk(tmp_path / "d", CAP, BLK)
    assert first.truncated_bytes > 0  # the torn frame header was cut away
    assert first.recovered_records == 5  # the seed writes replayed
    _assert_acked(first)
    first.close()

    # The truncation is durable: a second restart sees a clean journal.
    second = FDisk(tmp_path / "d", CAP, BLK)
    assert second.truncated_bytes == 0
    assert second.recovered_records == 5
    second.close()


def test_write_many_costs_one_sync(tmp_path):
    disk = FDisk(tmp_path / "d", CAP, BLK)
    _seed(disk)
    before = disk.fsyncs
    disk.write_many(BATCH)
    assert disk.fsyncs == before + 1  # the group-commit lever
    for block_no, payload in BATCH:
        assert disk.read(block_no) == payload
    disk.close()


def test_reopen_validates_geometry(tmp_path):
    disk = FDisk(tmp_path / "d", CAP, BLK)
    disk.write(1, b"x")
    disk.close()
    with pytest.raises(ValueError):
        FDisk(tmp_path / "d", CAP * 2, BLK)
    with pytest.raises(ValueError):
        FDisk(tmp_path / "d", CAP, BLK * 2)


def test_measure_sync_cost_is_positive(tmp_path):
    cost = measure_sync_cost(tmp_path, samples=4)
    assert cost > 0
