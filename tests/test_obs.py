"""Unit tests for the observability layer: metrics, spans, reports."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    Span,
)
from repro.obs.metrics import Histogram
from repro.obs.report import (
    from_json,
    render_commit_table,
    render_histogram,
    render_metrics,
    render_span,
    to_json,
)
from repro.sim.clock import LogicalClock


# ---------------------------------------------------------------------------
# counters and gauges
# ---------------------------------------------------------------------------


def test_counter_counts_and_is_monotonic():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.counter("x").inc(4)
    assert registry.counter("x").value == 5
    with pytest.raises(ValueError):
        registry.counter("x").inc(-1)


def test_registry_instruments_are_singletons_by_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    registry.gauge("depth").set(7)
    registry.gauge("depth").set(3)
    assert registry.gauge("depth").value == 3


# ---------------------------------------------------------------------------
# histogram bucketing
# ---------------------------------------------------------------------------


def test_histogram_buckets_by_inclusive_upper_edge():
    histogram = Histogram("h", bounds=(10, 100, 1000))
    for value in (5, 10, 11, 100, 999, 1000, 5000):
        histogram.observe(value)
    # Buckets: <=10, <=100, <=1000, overflow.
    assert histogram.bucket_counts == [2, 2, 2, 1]
    assert histogram.count == 7
    assert histogram.min == 5
    assert histogram.max == 5000
    assert histogram.total == sum((5, 10, 11, 100, 999, 1000, 5000))


def test_histogram_mean_and_quantile():
    histogram = Histogram("h", bounds=(10, 100, 1000))
    for _ in range(99):
        histogram.observe(7)
    histogram.observe(500)
    assert histogram.mean == pytest.approx((99 * 7 + 500) / 100)
    assert histogram.quantile(0.5) == 10  # the bucket edge holding the median
    assert histogram.quantile(1.0) == 1000
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_histogram_empty_quantile_is_zero():
    assert Histogram("h", bounds=(10,)).quantile(0.99) == 0.0


def test_recorder_observe_creates_histogram_with_default_buckets():
    recorder = Recorder()
    recorder.observe("lat", 120)
    assert recorder.metrics.histogram("lat").count == 1


# ---------------------------------------------------------------------------
# span nesting
# ---------------------------------------------------------------------------


def test_span_nesting_builds_a_tree_on_the_clock():
    clock = LogicalClock()
    recorder = Recorder(clock)
    with recorder.span("outer", kind="test") as outer:
        clock.advance(10)
        with recorder.span("inner") as inner:
            clock.advance(5)
            recorder.event("op", detail=1)
        clock.advance(2)
    assert outer.children == [inner]
    assert outer.duration == 17
    assert inner.duration == 5
    assert inner.events[0].name == "op"
    assert inner.events[0].tags == {"detail": 1}
    assert inner.counters == {"op": 1}
    # The event also bumped the global counter.
    assert recorder.metrics.counter("op").value == 1
    # Only the outermost span is a root.
    assert list(recorder.tracer.roots) == [outer]
    assert recorder.tracer.current is None


def test_events_outside_any_span_only_count():
    recorder = Recorder()
    recorder.event("lonely")
    assert recorder.metrics.counter("lonely").value == 1
    assert len(recorder.tracer.roots) == 0


def test_span_find_and_events_named():
    clock = LogicalClock()
    recorder = Recorder(clock)
    with recorder.span("commit") as span:
        with recorder.span("serialise"):
            pass
        recorder.event("disk.write", disk="a")
        recorder.event("disk.write", disk="b")
    assert span.find("serialise") is not None
    assert span.find("nothing") is None
    writes = span.events_named("disk.write")
    assert [event.tags["disk"] for event in writes] == ["a", "b"]


def test_span_tags_error_on_exception():
    recorder = Recorder()
    with pytest.raises(RuntimeError):
        with recorder.span("doomed"):
            raise RuntimeError("boom")
    (span,) = recorder.tracer.roots
    assert span.tags["error"] == "RuntimeError"
    assert span.end is not None


def test_tracer_bounded_root_history():
    recorder = Recorder(max_roots=3)
    for i in range(5):
        with recorder.span("s", i=i):
            pass
    roots = list(recorder.tracer.roots)
    assert len(roots) == 3
    assert [span.tags["i"] for span in roots] == [2, 3, 4]


def test_tracer_spans_named_searches_all_depths():
    recorder = Recorder()
    with recorder.span("a"):
        with recorder.span("b"):
            pass
    with recorder.span("b"):
        pass
    assert len(recorder.tracer.spans_named("b")) == 2
    assert len(recorder.tracer.roots_named("b")) == 1


# ---------------------------------------------------------------------------
# the null recorder
# ---------------------------------------------------------------------------


def test_null_recorder_is_inert():
    recorder = NullRecorder()
    assert not recorder.enabled
    recorder.count("x")
    recorder.gauge("g", 1)
    recorder.observe("h", 2)
    recorder.event("e", tag=1)
    with recorder.span("s", a=1) as span:
        span.tag(b=2)
        span.inc("c")
    assert recorder.current_span is None
    assert NULL_RECORDER.span("x") is NULL_RECORDER.span("y")  # one shared span


# ---------------------------------------------------------------------------
# report rendering and JSON round trip
# ---------------------------------------------------------------------------


def _busy_recorder() -> Recorder:
    clock = LogicalClock()
    recorder = Recorder(clock)
    recorder.count("disk.writes", 3)
    recorder.gauge("dirty", 2)
    recorder.observe("commit.ticks", 120, bounds=(100, 1000))
    recorder.observe("commit.ticks", 2000)
    with recorder.span("commit", path="fast") as span:
        clock.advance(100)
        recorder.event("disk.write", disk="blockA", block=4)
        with recorder.span("serialise", ok=True):
            clock.advance(10)
        span.tag(rounds=1)
    return recorder


def test_json_report_round_trip():
    recorder = _busy_recorder()
    raw = to_json(recorder)
    json.loads(raw)  # must be valid JSON
    metrics, spans = from_json(raw)
    assert metrics.counter("disk.writes").value == 3
    assert metrics.gauge("dirty").value == 2
    histogram = metrics.histogram("commit.ticks")
    assert histogram.count == 2
    assert histogram.bucket_counts == [0, 1, 1]  # 120 in <=1000, 2000 overflow
    (commit,) = spans
    assert commit.name == "commit"
    assert commit.tags == {"path": "fast", "rounds": 1}
    assert commit.duration == 110
    assert commit.events[0].tags == {"disk": "blockA", "block": 4}
    (child,) = commit.children
    assert child.name == "serialise"
    assert child.duration == 10
    # A second round trip is a fixed point.
    assert to_json(recorder) == json.dumps(
        {
            "metrics": metrics.as_dict(),
            "spans": [span.to_dict() for span in spans],
        },
        sort_keys=True,
    )


def test_text_renderers_cover_the_instruments():
    recorder = _busy_recorder()
    text = render_metrics(recorder.metrics)
    assert "disk.writes" in text and "3" in text
    assert "histogram commit.ticks" in text
    histogram_text = render_histogram(recorder.metrics.histogram("commit.ticks"))
    assert "count=2" in histogram_text
    span_text = render_span(list(recorder.tracer.roots)[0])
    assert "commit" in span_text and "serialise" in span_text
    table = render_commit_table(recorder.tracer)
    assert "fast" in table
    assert render_commit_table(Recorder().tracer) == "(no commits recorded)"


def test_render_metrics_empty_registry():
    assert render_metrics(MetricsRegistry()) == "(no metrics recorded)"
