"""The optimistic commit protocol and the serialise/merge walk (§5.2)."""

import pytest

from repro.errors import CommitConflict
from repro.core.occ import collect_write_paths, serialise
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


@pytest.fixture
def wide_file(fs):
    """A file with six top-level children holding distinct data."""
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    for i in range(6):
        fs.append_page(handle.version, ROOT, b"child%d" % i)
    fs.commit(handle.version)
    return cap


def _two_versions(fs, cap):
    return fs.create_version(cap), fs.create_version(cap)


# ---------------------------------------------------------------------------
# condition 1: base still current
# ---------------------------------------------------------------------------


def test_sequential_commits_always_succeed(fs, wide_file):
    """"As long as updates are done one after the other, commit always
    succeeds and requires virtually no processing at all."""
    for round_ in range(5):
        handle = fs.create_version(wide_file)
        fs.write_page(handle.version, PagePath.of(0), b"round%d" % round_)
        fs.commit(handle.version)
    current = fs.current_version(wide_file)
    assert fs.read_page(current, PagePath.of(0)) == b"round4"


def test_fast_path_does_no_tree_walk(fs, wide_file, cluster):
    """A commit whose base is current is one test-and-set: no page of the
    version's tree is read by validation."""
    handle = fs.create_version(wide_file)
    fs.write_page(handle.version, PagePath.of(3), b"x")
    disk = cluster.pair.disk_a
    fs.store.flush()
    reads_before = disk.stats.reads
    fs.commit(handle.version)
    # The TAS reads the base version page (and rewrites it); nothing else.
    assert disk.stats.reads - reads_before <= 2


# ---------------------------------------------------------------------------
# condition 2: merge of non-conflicting concurrent updates
# ---------------------------------------------------------------------------


def test_disjoint_writes_merge(fs, wide_file):
    va, vb = _two_versions(fs, wide_file)
    fs.write_page(va.version, PagePath.of(0), b"A0")
    fs.write_page(vb.version, PagePath.of(3), b"B3")
    fs.commit(va.version)
    fs.commit(vb.version)  # serialises after va, merging va's write
    current = fs.current_version(wide_file)
    assert fs.read_page(current, PagePath.of(0)) == b"A0"
    assert fs.read_page(current, PagePath.of(3)) == b"B3"
    assert fs.read_page(current, PagePath.of(1)) == b"child1"


def test_read_write_conflict_aborts_second(fs, wide_file):
    va, vb = _two_versions(fs, wide_file)
    fs.read_page(vb.version, PagePath.of(0))  # vb reads what va writes
    fs.write_page(va.version, PagePath.of(0), b"A0")
    fs.write_page(vb.version, PagePath.of(1), b"B1")
    fs.commit(va.version)
    with pytest.raises(CommitConflict):
        fs.commit(vb.version)
    # vb's update vanished; va's survived.
    current = fs.current_version(wide_file)
    assert fs.read_page(current, PagePath.of(0)) == b"A0"
    assert fs.read_page(current, PagePath.of(1)) == b"child1"


def test_write_read_is_not_a_conflict(fs, wide_file):
    """vb wrote what va read: va committed FIRST, so va's read saw the
    state before vb — serial order va, vb is valid."""
    va, vb = _two_versions(fs, wide_file)
    fs.read_page(va.version, PagePath.of(0))
    fs.write_page(va.version, PagePath.of(1), b"A1")
    fs.write_page(vb.version, PagePath.of(0), b"B0")
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(wide_file)
    assert fs.read_page(current, PagePath.of(0)) == b"B0"
    assert fs.read_page(current, PagePath.of(1)) == b"A1"


def test_blind_write_write_last_committer_wins(fs, wide_file):
    va, vb = _two_versions(fs, wide_file)
    fs.write_page(va.version, PagePath.of(2), b"A2")
    fs.write_page(vb.version, PagePath.of(2), b"B2")
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(wide_file)
    assert fs.read_page(current, PagePath.of(2)) == b"B2"


def test_read_your_own_write_then_conflict(fs, wide_file):
    """Reading your own written page does not create a false conflict,
    but reading a page another update wrote does."""
    va, vb = _two_versions(fs, wide_file)
    fs.write_page(vb.version, PagePath.of(4), b"B4")
    assert fs.read_page(vb.version, PagePath.of(4)) == b"B4"
    fs.write_page(va.version, PagePath.of(5), b"A5")
    fs.commit(va.version)
    fs.commit(vb.version)  # no overlap at all: fine
    assert fs.read_page(fs.current_version(wide_file), PagePath.of(4)) == b"B4"


def test_structural_vs_search_conflict(fs, wide_file):
    """V.c modified references that V.b searched: S against M."""
    va, vb = _two_versions(fs, wide_file)
    fs.append_page(va.version, ROOT, b"new")  # M on root
    fs.read_page(vb.version, PagePath.of(1))  # S on root
    fs.commit(va.version)
    with pytest.raises(CommitConflict):
        fs.commit(vb.version)


def test_structural_change_vs_blind_root_write_ok(fs, wide_file):
    """V.c restructured the root's table; V.b only wrote root data —
    different channels, no conflict."""
    va, vb = _two_versions(fs, wide_file)
    fs.append_page(va.version, ROOT, b"new")  # M on root refs
    fs.write_page(vb.version, ROOT, b"newrootdata")  # W on root data
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(wide_file)
    assert fs.read_page(current, ROOT) == b"newrootdata"
    # va's structural addition survived the merge.
    assert fs.read_page(current, PagePath.of(6)) == b"new"


def test_three_way_chain_of_merges(fs, wide_file):
    """Three concurrent disjoint updates all commit; the last validates
    against each intervening version in turn."""
    v1 = fs.create_version(wide_file)
    v2 = fs.create_version(wide_file)
    v3 = fs.create_version(wide_file)
    fs.write_page(v1.version, PagePath.of(0), b"one")
    fs.write_page(v2.version, PagePath.of(1), b"two")
    fs.write_page(v3.version, PagePath.of(2), b"three")
    fs.commit(v1.version)
    fs.commit(v2.version)
    fs.commit(v3.version)
    current = fs.current_version(wide_file)
    assert fs.read_page(current, PagePath.of(0)) == b"one"
    assert fs.read_page(current, PagePath.of(1)) == b"two"
    assert fs.read_page(current, PagePath.of(2)) == b"three"


def test_conflict_only_with_relevant_intermediate(fs, wide_file):
    """An update conflicts with one of several intermediates and aborts,
    even though it is compatible with the others."""
    v1 = fs.create_version(wide_file)
    v2 = fs.create_version(wide_file)
    fs.read_page(v2.version, PagePath.of(0))
    fs.write_page(v2.version, PagePath.of(1), b"mine")
    fs.write_page(v1.version, PagePath.of(0), b"clash")  # hits v2's read
    fs.commit(v1.version)
    with pytest.raises(CommitConflict):
        fs.commit(v2.version)


def test_deep_disjoint_merge(fs):
    """Disjoint updates below a shared interior page merge within it."""
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    mid = fs.append_page(handle.version, ROOT, b"mid")
    left = fs.append_page(handle.version, mid, b"left")
    right = fs.append_page(handle.version, mid, b"right")
    fs.commit(handle.version)
    va, vb = _two_versions(fs, cap)
    fs.write_page(va.version, left, b"LEFT")
    fs.write_page(vb.version, right, b"RIGHT")
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(cap)
    assert fs.read_page(current, left) == b"LEFT"
    assert fs.read_page(current, right) == b"RIGHT"
    assert fs.read_page(current, mid) == b"mid"


def test_restructured_table_merges_by_base_block(fs, wide_file):
    """V.b restructured a table (M) while V.c wrote below it: children are
    correlated through base references, so the deep write still lands."""
    va, vb = _two_versions(fs, wide_file)
    fs.write_page(va.version, PagePath.of(3), b"deep-write")
    # vb removes child 0: children shift left; index alignment is lost.
    fs.remove_page(vb.version, PagePath.of(0))
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(wide_file)
    # After the removal, old child 3 sits at index 2 — with va's write.
    assert fs.read_page(current, PagePath.of(2)) == b"deep-write"
    assert fs.page_structure(current, ROOT) == [1] * 5


def test_removed_subtree_drops_concurrent_write(fs, wide_file):
    """V.b removed the page V.c wrote (without reading it): serial order
    c-then-b means the removal wins."""
    va, vb = _two_versions(fs, wide_file)
    fs.write_page(va.version, PagePath.of(2), b"doomed")
    fs.remove_page(vb.version, PagePath.of(2))
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(wide_file)
    assert fs.page_structure(current, ROOT) == [1] * 5
    data = [
        fs.read_page(current, PagePath.of(i)) for i in range(5)
    ]
    assert b"doomed" not in data


# ---------------------------------------------------------------------------
# the serialise routine in isolation
# ---------------------------------------------------------------------------


def test_serialise_skips_unaccessed_subtrees(fs, wide_file):
    """"Unvisited branches in either page tree are not descended."""
    va, vb = _two_versions(fs, wide_file)
    fs.write_page(va.version, PagePath.of(0), b"A")
    fs.write_page(vb.version, PagePath.of(5), b"B")
    fs.commit(va.version)
    a_entry = fs.registry.version(va.version.obj)
    b_entry = fs.registry.version(vb.version.obj)
    fs.store.flush()
    outcome = serialise(fs.store, b_entry.root_block, a_entry.root_block)
    assert outcome.ok
    # Only the two roots (and the one grafted step) are visited — not the
    # six children.
    assert outcome.pages_visited <= 2
    fs.abort(vb.version)


def test_serialise_reports_conflict_path(fs, wide_file):
    va, vb = _two_versions(fs, wide_file)
    fs.read_page(vb.version, PagePath.of(1))
    fs.write_page(va.version, PagePath.of(1), b"A")
    fs.commit(va.version)
    a_entry = fs.registry.version(va.version.obj)
    b_entry = fs.registry.version(vb.version.obj)
    fs.store.flush()
    outcome = serialise(fs.store, b_entry.root_block, a_entry.root_block)
    assert not outcome.ok
    assert outcome.conflict_path == PagePath.of(1)
    fs.abort(vb.version)


def test_collect_write_paths(fs, wide_file):
    handle = fs.create_version(wide_file)
    fs.write_page(handle.version, PagePath.of(2), b"w")
    fs.read_page(handle.version, PagePath.of(4))
    fs.commit(handle.version)
    entry = fs.registry.version(handle.version.obj)
    result = collect_write_paths(fs.store, entry.root_block)
    assert result.paths == [PagePath.of(2)]


def test_collect_write_paths_m_covers_subtree(fs, wide_file):
    handle = fs.create_version(wide_file)
    fs.append_page(handle.version, PagePath.of(1), b"kid")
    fs.commit(handle.version)
    entry = fs.registry.version(handle.version.obj)
    result = collect_write_paths(fs.store, entry.root_block)
    assert PagePath.of(1) in result.paths


# ---------------------------------------------------------------------------
# merge safety: mismatched reference tables
# ---------------------------------------------------------------------------


def test_merge_refuses_mismatched_unrestructured_tables():
    """Unrestructured tables of different lengths cannot be correlated by
    index; zipping would silently truncate the walk to the shorter table
    and skip conflict checks.  The merge must conflict instead."""
    from repro.core.occ import SerialiseResult, _Conflict, _merge_aligned
    from repro.core.page import Page, PageRef

    b_page = Page(refs=[PageRef(2), PageRef(3)])
    c_page = Page(refs=[PageRef(2)])
    with pytest.raises(_Conflict):
        _merge_aligned(None, b_page, c_page, ROOT, SerialiseResult(ok=True), True)


def test_merge_accepts_equal_length_tables():
    from repro.core.occ import SerialiseResult, _merge_aligned
    from repro.core.page import Page, PageRef

    b_page = Page(refs=[PageRef(2)])
    c_page = Page(refs=[PageRef(4)])  # V.c shares the base subtree (no C)
    changed = _merge_aligned(
        None, b_page, c_page, ROOT, SerialiseResult(ok=True), True
    )
    assert changed is False
