"""Property tests: arbitrary on-disk corruption never turns into silent
garbage.

Hypothesis flips and truncates bytes in block files and journal tails.
The contract under test:

* a damaged block file makes ``read`` raise :class:`CorruptBlock` — on
  the live disk AND after a restart — and never returns wrong bytes;
* a damaged journal never crashes recovery: the replayed state is the
  state after some *prefix* of the acknowledged operations;
* the companion-pair repair path heals a corrupted half from the healthy
  one, exactly as it does on simulated disks.

Block files are corrupted after ``checkpoint()``: until then the journal
still holds every payload and replay would silently *heal* the damage on
restart (correct WAL behaviour, but not what these tests probe).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.fdisk import FDisk
from repro.block.stable import StableClient, StablePair
from repro.errors import CorruptBlock, NoSuchBlock
from repro.sim.network import Network

CAP, BLK = 64, 256

payloads = st.binary(min_size=1, max_size=64)


def _damage(raw: bytearray, mode: str, offset: int, flip: int) -> bytes:
    """Flip one byte (XOR with a nonzero mask) or cut the tail."""
    if mode == "flip":
        raw[offset % len(raw)] ^= flip
    else:
        del raw[len(raw) - 1 - (offset % len(raw)) :]
    return bytes(raw)


@settings(max_examples=30, deadline=None)
@given(
    blocks=st.dictionaries(
        st.integers(min_value=1, max_value=16), payloads, min_size=1, max_size=6
    ),
    victim_index=st.integers(min_value=0, max_value=15),
    offset=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
    mode=st.sampled_from(["flip", "truncate"]),
)
def test_corrupt_block_file_never_reads_garbage(
    blocks, victim_index, offset, flip, mode
):
    with tempfile.TemporaryDirectory() as td:
        root = Path(td) / "d"
        disk = FDisk(root, CAP, BLK)
        for block_no, data in blocks.items():
            disk.write(block_no, data)
        disk.checkpoint()  # journal drops the payloads: no replay heal
        victims = sorted(blocks)
        victim = victims[victim_index % len(victims)]
        path = disk._blocks_dir / f"{victim}.blk"
        path.write_bytes(_damage(bytearray(path.read_bytes()), mode, offset, flip))

        with pytest.raises(CorruptBlock):
            disk.read(victim)
        disk.close()

        # A restarted process detects the same damage, and every other
        # block still reads back byte-for-byte.
        recovered = FDisk(root, CAP, BLK)
        with pytest.raises(CorruptBlock):
            recovered.read(victim)
        for block_no, data in blocks.items():
            if block_no != victim:
                assert recovered.read(block_no) == data
        recovered.close()


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=1, max_value=8), payloads),
        min_size=1,
        max_size=8,
    ),
    offset=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
    mode=st.sampled_from(["flip", "truncate"]),
)
def test_corrupt_journal_recovers_a_valid_prefix(ops, offset, flip, mode):
    """With the block files gone, the journal is the only copy: whatever
    survives corruption must replay to a prefix of the acked writes."""
    with tempfile.TemporaryDirectory() as td:
        root = Path(td) / "d"
        disk = FDisk(root, CAP, BLK)
        for block_no, data in ops:
            disk.write(block_no, data)
        journal = disk._journal_path
        blocks_dir = disk._blocks_dir
        disk.close()

        journal.write_bytes(
            _damage(bytearray(journal.read_bytes()), mode, offset, flip)
        )
        for blk in blocks_dir.glob("*.blk"):
            blk.unlink()

        recovered = FDisk(root, CAP, BLK)  # recovery must not crash
        state: dict[int, bytes] = {}
        prefixes = [dict(state)]
        for block_no, data in ops:
            state[block_no] = data
            prefixes.append(dict(state))
        got: dict[int, bytes] = {}
        for block_no in {b for b, _ in ops}:
            try:
                got[block_no] = recovered.read(block_no)
            except NoSuchBlock:
                pass
        assert got in prefixes, "recovered state is not a prefix of acked ops"
        recovered.close()

        # Truncation was made durable: a second restart is clean.
        again = FDisk(root, CAP, BLK)
        assert again.truncated_bytes == 0
        again.close()


@settings(max_examples=20, deadline=None)
@given(
    payload_list=st.lists(payloads, min_size=1, max_size=5),
    corrupt_mask=st.lists(st.booleans(), min_size=5, max_size=5),
)
def test_companion_repair_heals_corrupt_half(payload_list, corrupt_mask):
    with tempfile.TemporaryDirectory() as td:
        net = Network()
        pair = StablePair(
            net, 0x910, capacity=CAP, block_size=BLK, backend="disk", data_dir=td
        )
        client = StableClient(net, "cli", 0x910, account=1)
        blocks = [client.allocate_write(p) for p in payload_list]
        for block_no, corrupted in zip(blocks, corrupt_mask):
            if corrupted:
                pair.disk_a.corrupt(block_no)
        # Reads fail over to the healthy companion and repair in place.
        for block_no, payload in zip(blocks, payload_list):
            assert client.read(block_no) == payload
        for block_no, payload in zip(blocks, payload_list):
            assert pair.disk_a.read(block_no) == payload
        assert pair.consistent()
