"""The directory server: naming, nesting, concurrent binds."""

import pytest

from repro.apps.directory import (
    DirectoryEntryExists,
    DirectoryServer,
    NoSuchEntry,
)
from repro.client.api import FileClient


@pytest.fixture
def dirs(client):
    return DirectoryServer(client)


@pytest.fixture
def root(dirs):
    return dirs.create_root()


def test_enter_and_lookup(dirs, root, client):
    target = client.create_file(b"content")
    dirs.enter(root, "readme", target)
    assert dirs.lookup(root, "readme") == target


def test_duplicate_name_rejected(dirs, root, client):
    cap = client.create_file(b"x")
    dirs.enter(root, "name", cap)
    with pytest.raises(DirectoryEntryExists):
        dirs.enter(root, "name", cap)


def test_replace_overwrites(dirs, root, client):
    first = client.create_file(b"1")
    second = client.create_file(b"2")
    dirs.enter(root, "name", first)
    dirs.replace(root, "name", second)
    assert dirs.lookup(root, "name") == second


def test_unlink(dirs, root, client):
    cap = client.create_file(b"x")
    dirs.enter(root, "gone", cap)
    dirs.unlink(root, "gone")
    with pytest.raises(NoSuchEntry):
        dirs.lookup(root, "gone")
    with pytest.raises(NoSuchEntry):
        dirs.unlink(root, "gone")


def test_list_sorted(dirs, root, client):
    for name in ("zebra", "alpha", "mid"):
        dirs.enter(root, name, client.create_file(name.encode()))
    assert dirs.list(root) == ["alpha", "mid", "zebra"]


def test_mkdir_and_nested_resolution(dirs, root, client):
    sub = dirs.mkdir(root, "src")
    target = client.create_file(b"main")
    dirs.enter(sub, "main.py", target)
    assert dirs.resolve(root, "src/main.py") == target
    assert dirs.resolve(root, "/src/main.py") == target  # leading slash ok


def test_bind_path_creates_intermediates(dirs, root, client):
    target = client.create_file(b"deep")
    dirs.bind_path(root, "/a/b/c/file", target)
    assert dirs.resolve(root, "a/b/c/file") == target
    assert dirs.list(dirs.resolve(root, "a/b")) == ["c"]


def test_unicode_names(dirs, root, client):
    cap = client.create_file(b"x")
    dirs.enter(root, "bestanden-ñämé", cap)
    assert dirs.lookup(root, "bestanden-ñämé") == cap


def test_concurrent_binds_both_land(cluster):
    net = cluster.network
    c1 = FileClient(net, "c1", cluster.service_port)
    c2 = FileClient(net, "c2", cluster.service_port)
    d1, d2 = DirectoryServer(c1), DirectoryServer(c2)
    root = d1.create_root()
    f1 = c1.create_file(b"1")
    f2 = c2.create_file(b"2")
    d1.enter(root, "one", f1)
    d2.enter(root, "two", f2)  # may redo internally; must not lose "one"
    assert d1.list(root) == ["one", "two"]
