"""The client library: redo loop, failover, cache, lock waits."""

import pytest

from repro.errors import CommitConflict, ReproError
from repro.core.pathname import PagePath
from repro.core.system_tree import SystemTree
from repro.client.api import FileClient

ROOT = PagePath.ROOT


@pytest.fixture
def net_client(cluster2):
    return FileClient(cluster2.network, "host", cluster2.service_port)


def test_create_and_transact(net_client):
    cap = net_client.create_file(b"v1")
    net_client.transact(cap, lambda u: u.write(ROOT, b"v2"))
    assert net_client.read(cap) == b"v2"
    assert net_client.stats.commits == 1


def test_transact_returns_fn_result(net_client):
    cap = net_client.create_file(b"v1")

    def update(u):
        u.write(ROOT, b"v2")
        return "done"

    assert net_client.transact(cap, update) == "done"


def test_transact_redoes_on_conflict(cluster2):
    """Two clients race on the same page: one redoes and both changes
    (the survivor's final one) land."""
    net = cluster2.network
    alice = FileClient(net, "alice", cluster2.service_port)
    bob = FileClient(net, "bob", cluster2.service_port)
    cap = alice.create_file(b"0")

    # Interleave manually: both read, both try to increment.
    ua = alice.begin(cap)
    ub = bob.begin(cap)
    a_val = int(ua.read(ROOT))
    b_val = int(ub.read(ROOT))
    ua.write(ROOT, b"%d" % (a_val + 1))
    ub.write(ROOT, b"%d" % (b_val + 1))
    ua.commit()
    with pytest.raises(CommitConflict):
        ub.commit()

    # With the transact loop, the same race resolves automatically.
    def increment(u):
        value = int(u.read(ROOT))
        u.write(ROOT, b"%d" % (value + 1))

    bob.transact(cap, increment)
    assert alice.read(cap) == b"2"


def test_transact_gives_up_eventually(cluster2, monkeypatch):
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"x")

    def always_conflicting(u):
        # Another update sneaks in behind our back every time.
        u.read(ROOT)
        saboteur = FileClient(cluster2.network, "saboteur", cluster2.service_port)
        saboteur.transact(cap, lambda s: s.write(ROOT, b"sabotage"))
        u.write(ROOT, b"mine")

    with pytest.raises(CommitConflict):
        client.transact(cap, always_conflicting, max_redos=3)


def test_application_errors_abort_and_propagate(net_client, cluster2):
    cap = net_client.create_file(b"x")

    class AppError(ReproError):
        pass

    def bad(update):
        update.write(ROOT, b"partial")
        raise AppError("application failed")

    with pytest.raises(AppError):
        net_client.transact(cap, bad)
    # The partial write was aborted.
    assert net_client.read(cap) == b"x"
    # No uncommitted versions left behind.
    live = [
        v
        for v in cluster2.registry.versions.values()
        if v.status == "uncommitted"
    ]
    assert live == []


def test_failover_between_servers(cluster2):
    client = FileClient(cluster2.network, "host", cluster2.service_port)
    cap = client.create_file(b"v1")
    cluster2.fs(0).crash()
    assert client.read(cap) == b"v1"
    client.transact(cap, lambda u: u.write(ROOT, b"v2"))
    assert client.read(cap) == b"v2"


def test_update_handle_operations(net_client):
    cap = net_client.create_file(b"root")
    update = net_client.begin(cap)
    child = update.append_page(ROOT, b"c0")
    update.insert_page(ROOT, 0, b"first")
    # Path names are positional: after the insert at 0, `child` (path "0")
    # now names the inserted page, and the appended page moved to "1".
    update.write(child, b"c0+")
    update.commit()
    assert net_client.read(cap, PagePath.of(0)) == b"c0+"
    assert net_client.read(cap, PagePath.of(1)) == b"c0"


def test_structure_and_holes_via_client(net_client):
    cap = net_client.create_file(b"root")
    update = net_client.begin(cap)
    a = update.append_page(ROOT, b"a")
    update.append_page(ROOT, b"b")
    update.make_hole(a)
    assert update.structure(ROOT) == [0, 1]
    update.fill_hole(a, b"a2")
    assert update.structure(ROOT) == [1, 1]
    update.commit()
    assert net_client.read(cap, a) == b"a2"


def test_split_and_move_via_client(net_client):
    cap = net_client.create_file(b"root")
    update = net_client.begin(cap)
    page = update.append_page(ROOT, b"HELLOworld")
    sibling = update.split_page(page, 5)
    update.commit()
    assert net_client.read(cap, page) == b"HELLO"
    assert net_client.read(cap, sibling) == b"world"


def test_history_and_read_version(net_client):
    cap = net_client.create_file(b"r0")
    for n in range(1, 4):
        net_client.transact(cap, lambda u, n=n: u.write(ROOT, b"r%d" % n))
    history = net_client.history(cap)
    assert [net_client.read_version(v) for v in history] == [
        b"r0", b"r1", b"r2", b"r3",
    ]


def test_client_waits_out_super_lock_of_dead_holder(cluster2):
    """A client blocked by a dead super-update's inner lock recovers it
    through the service and proceeds."""
    fs0 = cluster2.fs(0)
    tree = SystemTree(fs0)
    client = FileClient(
        cluster2.network, "host", cluster2.service_port, prefer_server="fs1"
    )
    cap_parent = fs0.create_file(b"P")
    handle = fs0.create_version(cap_parent)
    cap_sub = tree.create_subfile(handle.version, ROOT, initial_data=b"S v1")
    fs0.commit(handle.version)

    update = tree.begin_super_update(cap_parent)
    tree.open_subfile(update, cap_sub)
    fs0.store.flush()
    fs0.crash()  # dies holding the inner lock on the sub-file

    client.transact(cap_sub, lambda u: u.write(ROOT, b"S v2"))
    assert client.read(cap_sub) == b"S v2"
    assert client.stats.lock_waits >= 1
