"""Workload generators and the cross-system driver."""

import random

import pytest

from repro.baselines.locking import LockingFileService
from repro.baselines.timestamp import TimestampFileService
from repro.testbed import build_cluster
from repro.workloads.driver import (
    AmoebaAdapter,
    LockingAdapter,
    TimestampAdapter,
    run_workload,
)
from repro.workloads.generators import (
    TxnSpec,
    airline_workload,
    compiler_temp_sizes,
    hotspot_workload,
    uniform_workload,
    zipf_workload,
)


@pytest.fixture
def rng():
    return random.Random(99)


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


def test_uniform_workload_shape(rng):
    wl = uniform_workload(rng, clients=3, txns_per_client=5, n_pages=10)
    assert len(wl) == 3
    assert all(len(txns) == 5 for txns in wl)
    for txns in wl:
        for spec in txns:
            assert all(0 <= p < 10 for p in spec.pages_touched)
            assert len(spec.writes) == 1


def test_zipf_workload_skews_to_low_ranks(rng):
    wl = zipf_workload(rng, clients=1, txns_per_client=500, n_pages=50, skew=1.2)
    pages = [p for spec in wl[0] for p in spec.writes]
    low = sum(1 for p in pages if p < 5)
    assert low > len(pages) * 0.3  # far above the uniform 10%


def test_hotspot_workload_hits_hot_set(rng):
    wl = hotspot_workload(
        rng, clients=1, txns_per_client=300, n_pages=100,
        hot_pages=2, hot_probability=0.9,
    )
    pages = [p for spec in wl[0] for p in spec.writes]
    hot = sum(1 for p in pages if p < 2)
    assert hot > len(pages) * 0.7


def test_airline_workload_is_rmw(rng):
    wl = airline_workload(rng, clients=2, bookings_per_client=10, n_flights=5)
    for txns in wl:
        for spec in txns:
            assert spec.reads == spec.writes
            assert len(spec.reads) == 1


def test_airline_popularity_bias(rng):
    wl = airline_workload(
        rng, clients=1, bookings_per_client=400, n_flights=50,
        popular_flight_bias=0.5,
    )
    flights = [spec.writes[0] for spec in wl[0]]
    assert flights.count(0) > 100


def test_compiler_temp_sizes_fit_one_page(rng):
    sizes = compiler_temp_sizes(rng, files=50)
    assert all(0 < size < 32768 for size in sizes)


def test_read_mostly_workload_shape(rng):
    from repro.workloads.generators import read_mostly_workload

    wl = read_mostly_workload(
        rng, clients=2, txns_per_client=100, n_pages=32, write_fraction=0.2
    )
    writers = sum(1 for txns in wl for spec in txns if spec.writes)
    total = sum(len(txns) for txns in wl)
    assert 0 < writers < total * 0.4
    for txns in wl:
        for spec in txns:
            if spec.writes:
                assert spec.writes[0] in spec.reads  # read-modify-write


def test_write_burst_workload_shape(rng):
    from repro.workloads.generators import write_burst_workload

    wl = write_burst_workload(
        rng, clients=2, txns_per_client=5, n_pages=32, burst_size=6
    )
    for txns in wl:
        for spec in txns:
            assert len(spec.writes) == 6
            assert spec.reads == ()


# ---------------------------------------------------------------------------
# the driver, against all three systems
# ---------------------------------------------------------------------------


def _adapter(kind, cluster):
    if kind == "amoeba":
        return AmoebaAdapter(cluster.fs())
    if kind == "felix":
        from repro.workloads.driver import FelixAdapter

        return FelixAdapter(cluster.fs())
    if kind == "locking":
        return LockingAdapter(
            LockingFileService("lk", cluster.network, cluster.block_port, 9)
        )
    return TimestampAdapter(
        TimestampFileService("ts", cluster.network, cluster.block_port, 9)
    )


@pytest.mark.parametrize("kind", ["amoeba", "felix", "locking", "timestamp"])
def test_all_transactions_complete(kind, rng):
    cluster = build_cluster(seed=13)
    adapter = _adapter(kind, cluster)
    workload = uniform_workload(rng, clients=4, txns_per_client=5, n_pages=16)
    result = run_workload(adapter, workload, 16, cluster.network)
    assert result.committed + result.gave_up == 20
    assert result.gave_up == 0
    assert result.makespan > 0
    assert result.makespan <= result.work_ticks
    assert len(result.client_ticks) == 4


@pytest.mark.parametrize("kind", ["amoeba", "felix", "locking", "timestamp"])
def test_final_state_is_some_committed_write(kind, rng):
    """Whatever the system, every page's final committed state must be a
    payload some transaction actually wrote (no torn or invented data)."""
    cluster = build_cluster(seed=29)
    adapter = _adapter(kind, cluster)
    workload = hotspot_workload(
        rng, clients=4, txns_per_client=4, n_pages=8,
        hot_pages=2, hot_probability=0.7,
    )
    run_workload(adapter, workload, 8, cluster.network)
    for page in range(8):
        data = adapter.read_committed(page)
        assert data == b"\x00" * adapter.page_size or data[:1] == b"p"


def test_amoeba_redo_rate_rises_with_contention(rng):
    low_cluster = build_cluster(seed=31)
    low = run_workload(
        AmoebaAdapter(low_cluster.fs()),
        uniform_workload(rng, clients=6, txns_per_client=5, n_pages=128),
        128,
        low_cluster.network,
    )
    high_cluster = build_cluster(seed=31)
    high = run_workload(
        AmoebaAdapter(high_cluster.fs()),
        hotspot_workload(
            rng, clients=6, txns_per_client=5, n_pages=128,
            hot_pages=1, hot_probability=0.95,
        ),
        128,
        high_cluster.network,
    )
    assert high.redo_attempts > low.redo_attempts


def test_deterministic_given_seed():
    def run_once():
        cluster = build_cluster(seed=77)
        rng = random.Random(55)
        workload = uniform_workload(rng, clients=3, txns_per_client=4, n_pages=12)
        return run_workload(
            AmoebaAdapter(cluster.fs()), workload, 12, cluster.network
        )

    a, b = run_once(), run_once()
    assert (a.committed, a.redo_attempts, a.work_ticks, a.makespan) == (
        b.committed,
        b.redo_attempts,
        b.work_ticks,
        b.makespan,
    )


def test_run_result_derived_metrics():
    from repro.workloads.driver import RunResult

    result = RunResult(system="x", committed=10, redo_attempts=5, makespan=1000)
    assert result.throughput == 10.0
    assert result.redo_rate == 0.5
    assert abs(result.wasted_fraction - 5 / 15) < 1e-9
    assert RunResult(system="y").throughput == 0.0
