"""The FELIX-style baseline: versions with file-level exclusive locking."""

import pytest

from repro.baselines.felix import FelixFileService, FileBusy
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


@pytest.fixture
def felix(cluster):
    return FelixFileService(cluster.fs())


@pytest.fixture
def filecap(cluster, felix):
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(4):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    return cap


def test_update_cycle(cluster, felix, filecap):
    fs = cluster.fs()
    handle = felix.begin(filecap)
    fs.write_page(handle.version, PagePath.of(0), b"new")
    felix.commit(handle)
    assert felix.read_committed(filecap, PagePath.of(0)) == b"new"


def test_second_writer_blocked(felix, filecap):
    handle = felix.begin(filecap)
    with pytest.raises(FileBusy):
        felix.begin(filecap)
    felix.abort(handle)
    # Released: the next writer proceeds.
    handle2 = felix.begin(filecap)
    felix.abort(handle2)


def test_disjoint_page_updates_still_serialise(cluster, felix, filecap):
    """The cost §6 calls out: writers of *different* pages of one file
    exclude each other anyway."""
    fs = cluster.fs()
    handle = felix.begin(filecap)
    fs.write_page(handle.version, PagePath.of(0), b"A")
    with pytest.raises(FileBusy):
        felix.begin(filecap)  # would have written page 3; blocked anyway
    felix.commit(handle)
    handle2 = felix.begin(filecap)
    fs.write_page(handle2.version, PagePath.of(3), b"B")
    felix.commit(handle2)
    assert felix.read_committed(filecap, PagePath.of(0)) == b"A"
    assert felix.read_committed(filecap, PagePath.of(3)) == b"B"


def test_commits_never_conflict(cluster, felix, filecap):
    """With the exclusive lock, every commit takes the fast path."""
    fs = cluster.fs()
    before = fs.metrics.conflicts
    for n in range(5):
        handle = felix.begin(filecap)
        fs.write_page(handle.version, PagePath.of(n % 4), b"u%d" % n)
        felix.commit(handle)
    assert fs.metrics.conflicts == before
    assert fs.metrics.merged_commits == 0


def test_readers_never_blocked(cluster, felix, filecap):
    """FELIX's virtue, shared with Amoeba: versions make reads free."""
    fs = cluster.fs()
    handle = felix.begin(filecap)
    fs.write_page(handle.version, PagePath.of(1), b"pending")
    # A reader during the exclusive update sees the committed state.
    assert felix.read_committed(filecap, PagePath.of(1)) == b"c1"
    felix.commit(handle)
    assert felix.read_committed(filecap, PagePath.of(1)) == b"pending"


def test_different_files_update_concurrently(cluster, felix):
    fs = cluster.fs()
    cap_a = fs.create_file(b"A")
    cap_b = fs.create_file(b"B")
    ha = felix.begin(cap_a)
    hb = felix.begin(cap_b)  # a different file: no exclusion
    fs.write_page(ha.version, ROOT, b"A2")
    fs.write_page(hb.version, ROOT, b"B2")
    felix.commit(ha)
    felix.commit(hb)
    assert felix.read_committed(cap_a, ROOT) == b"A2"
    assert felix.read_committed(cap_b, ROOT) == b"B2"


def test_driver_integration(cluster):
    import random

    from repro.workloads.driver import FelixAdapter, run_workload
    from repro.workloads.generators import uniform_workload

    rng = random.Random(7)
    adapter = FelixAdapter(cluster.fs())
    workload = uniform_workload(rng, clients=4, txns_per_client=4, n_pages=16)
    result = run_workload(adapter, workload, 16, cluster.network)
    assert result.committed == 16
    assert result.gave_up == 0
    # File-level exclusion showed up as waits even though most updates
    # touched different pages.
    assert result.lock_waits > 0
