"""Capabilities: minting, validation, restriction, revocation, wire format."""

import random

import pytest

from repro.capability import (
    ALL_RIGHTS,
    Capability,
    CapabilityIssuer,
    RIGHT_COMMIT,
    RIGHT_READ,
    RIGHT_WRITE,
    new_port,
    new_secret,
)
from repro.errors import BadCapability, InsufficientRights


@pytest.fixture
def issuer():
    return CapabilityIssuer(new_port(random.Random(1)))


def test_mint_produces_distinct_objects(issuer):
    a = issuer.mint()
    b = issuer.mint()
    assert a.obj != b.obj


def test_validate_accepts_genuine_capability(issuer):
    cap = issuer.mint()
    assert issuer.validate(cap) == cap.obj


def test_validate_rejects_wrong_port(issuer):
    cap = issuer.mint()
    other = Capability(cap.port ^ 1, cap.obj, cap.rights, cap.check)
    with pytest.raises(BadCapability):
        issuer.validate(other)


def test_validate_rejects_forged_check(issuer):
    cap = issuer.mint()
    forged = Capability(cap.port, cap.obj, cap.rights, cap.check ^ 0xDEAD)
    with pytest.raises(BadCapability):
        issuer.validate(forged)


def test_validate_rejects_unknown_object(issuer):
    cap = issuer.mint()
    ghost = Capability(cap.port, cap.obj + 99, cap.rights, cap.check)
    with pytest.raises(BadCapability):
        issuer.validate(ghost)


def test_rights_escalation_is_a_forgery(issuer):
    """Changing the rights field without the secret breaks the check."""
    cap = issuer.restrict(issuer.mint(), RIGHT_READ)
    widened = Capability(cap.port, cap.obj, ALL_RIGHTS, cap.check)
    with pytest.raises(BadCapability):
        issuer.validate(widened)


def test_required_rights_enforced(issuer):
    cap = issuer.restrict(issuer.mint(), RIGHT_READ)
    issuer.validate(cap, RIGHT_READ)
    with pytest.raises(InsufficientRights):
        issuer.validate(cap, RIGHT_WRITE)


def test_restrict_produces_valid_subset(issuer):
    owner = issuer.mint()
    reader = issuer.restrict(owner, RIGHT_READ)
    assert issuer.validate(reader, RIGHT_READ) == owner.obj
    with pytest.raises(InsufficientRights):
        issuer.restrict(reader, RIGHT_READ | RIGHT_COMMIT)


def test_revocation_kills_all_capabilities(issuer):
    cap = issuer.mint()
    issuer.revoke(cap.obj)
    with pytest.raises(BadCapability):
        issuer.validate(cap)
    assert not issuer.knows(cap.obj)


def test_mint_for_rekeys_unknown_object(issuer):
    cap = issuer.mint_for(42)
    assert cap.obj == 42
    assert issuer.validate(cap) == 42


def test_mint_for_existing_object_preserves_secret(issuer):
    first = issuer.mint_for(7)
    second = issuer.mint_for(7, RIGHT_READ)
    # Both derive from the same secret: both validate.
    assert issuer.validate(first) == 7
    assert issuer.validate(second, RIGHT_READ) == 7


def test_install_secret_revives_capabilities(issuer):
    cap = issuer.mint()
    secret = issuer.secret_of(cap.obj)
    fresh = CapabilityIssuer(issuer.port)
    fresh.install_secret(cap.obj, secret)
    assert fresh.validate(cap) == cap.obj


def test_pack_unpack_roundtrip(issuer):
    cap = issuer.mint()
    assert Capability.unpack(cap.pack()) == cap


def test_pack_nil_roundtrip():
    assert Capability.unpack(Capability.pack_nil()) is None


def test_unpack_rejects_wrong_length():
    with pytest.raises(ValueError):
        Capability.unpack(b"\x00" * 5)


def test_deterministic_ports_with_rng():
    assert new_port(random.Random(3)) == new_port(random.Random(3))
    assert new_secret(random.Random(3)) == new_secret(random.Random(3))


def test_restrict_via_capability_method_requires_issuer(issuer):
    cap = issuer.mint()
    with pytest.raises(NotImplementedError):
        cap.restrict(RIGHT_READ)
    with pytest.raises(InsufficientRights):
        issuer.restrict(cap, ALL_RIGHTS).restrict(ALL_RIGHTS << 1)
