"""Property tests for the wire codec (repro.net.wire).

Round-trips arbitrary requests, replies and errors through the binary
encoding, and checks the explicit safety guards: oversized frames are
rejected (never truncated) on both encode and decode, truncated payloads
raise :class:`TruncatedFrame`, corrupted headers raise :class:`BadFrame`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.block.server import TasResult
from repro.block.stable import _Intention
from repro.capability import Capability
from repro.core.service import VersionHandle
from repro.errors import (
    BadFrame,
    CommitConflict,
    FrameTooLarge,
    RemoteCallError,
    ReproError,
    TruncatedFrame,
)
from repro.net import wire

# -- strategies -------------------------------------------------------------

capabilities = st.builds(
    Capability,
    port=st.integers(min_value=0, max_value=(1 << 48) - 1),
    obj=st.integers(min_value=1, max_value=(1 << 64) - 1),
    rights=st.integers(min_value=0, max_value=(1 << 16) - 1),
    check=st.integers(min_value=0, max_value=(1 << 48) - 1),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 256), max_value=1 << 256),
    st.floats(allow_nan=False),
    st.binary(max_size=256),
    st.text(max_size=64),
    capabilities,
    st.builds(VersionHandle, version=capabilities, file=capabilities),
    st.builds(TasResult, success=st.booleans(), current=st.binary(max_size=64)),
    st.builds(
        _Intention,
        kind=st.sampled_from(["write", "free", "reserve"]),
        account=st.integers(min_value=0, max_value=1 << 32),
        block_no=st.integers(min_value=0, max_value=1 << 32),
        data=st.binary(max_size=64),
    ),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=16), st.integers(), st.binary(max_size=8)),
            children,
            max_size=6,
        ),
    ),
    max_leaves=24,
)

params = st.dictionaries(st.text(max_size=24), values, max_size=6)


# -- round trips ------------------------------------------------------------


@given(value=values)
@settings(max_examples=200)
def test_value_round_trip(value):
    assert wire.decode_value(wire.encode_value(value)) == value


@given(sender=st.text(max_size=32), command=st.text(max_size=32), params=params)
@settings(max_examples=100)
def test_request_round_trip(sender, command, params):
    frame = wire.encode_request(sender, command, params)
    frame_type, length = wire.decode_header(frame[: wire.HEADER_SIZE])
    assert frame_type == wire.FRAME_REQUEST
    assert length == len(frame) - wire.HEADER_SIZE
    assert wire.decode_request(frame[wire.HEADER_SIZE :]) == (
        sender,
        command,
        params,
    )


@given(value=values)
@settings(max_examples=100)
def test_reply_round_trip(value):
    frame = wire.encode_reply(value)
    frame_type, length = wire.decode_header(frame[: wire.HEADER_SIZE])
    assert frame_type == wire.FRAME_REPLY
    assert wire.decode_value(frame[wire.HEADER_SIZE :]) == value


@given(message=st.text(max_size=128))
def test_error_round_trip_repro_error(message):
    frame = wire.encode_error(CommitConflict(message))
    frame_type, _ = wire.decode_header(frame[: wire.HEADER_SIZE])
    assert frame_type == wire.FRAME_ERROR
    exc = wire.decode_error(frame[wire.HEADER_SIZE :])
    assert type(exc) is CommitConflict
    assert str(exc) == message


def test_error_round_trip_builtin_and_unknown():
    exc = wire.decode_error(
        wire.encode_error(ValueError("bad range"))[wire.HEADER_SIZE :]
    )
    assert type(exc) is ValueError and str(exc) == "bad range"

    class Exotic(Exception):
        pass

    exc = wire.decode_error(wire.encode_error(Exotic("huh"))[wire.HEADER_SIZE :])
    assert type(exc) is RemoteCallError
    assert "Exotic" in str(exc) and "huh" in str(exc)


def test_error_decode_never_widens_to_non_repro_class():
    # A hostile error frame naming a non-exception attribute of the errors
    # module must not be instantiated.
    payload = wire.encode_value(("annotations", "x"))
    exc = wire.error_to_exception("annotations", "x")
    assert isinstance(exc, RemoteCallError)
    assert isinstance(wire.decode_error(payload), RemoteCallError)


# -- oversize guard ---------------------------------------------------------


def test_encode_rejects_oversized_frame():
    with pytest.raises(FrameTooLarge):
        wire.encode_reply(b"x" * 100, max_frame=64)


def test_decode_header_rejects_oversized_announcement():
    frame = wire.encode_reply(b"y" * 512)
    with pytest.raises(FrameTooLarge):
        wire.decode_header(frame[: wire.HEADER_SIZE], max_frame=64)


@given(value=values)
@settings(max_examples=50)
def test_oversize_is_all_or_nothing(value):
    """A value either encodes completely within the limit or raises —
    there is no silently truncated frame."""
    try:
        frame = wire.encode_reply(value, max_frame=256)
    except FrameTooLarge:
        return
    assert len(frame) <= 256
    assert wire.decode_value(frame[wire.HEADER_SIZE :]) == value


# -- truncation and corruption ----------------------------------------------


@given(value=values)
@settings(max_examples=100)
def test_truncated_payload_raises_cleanly(value):
    payload = wire.encode_value(value)
    for cut in {0, 1, len(payload) // 2, len(payload) - 1} - {len(payload)}:
        with pytest.raises((TruncatedFrame, BadFrame)):
            wire.decode_value(payload[:cut])


def test_trailing_garbage_is_rejected():
    payload = wire.encode_value(42) + b"\x00"
    with pytest.raises(BadFrame):
        wire.decode_value(payload)


def test_bad_magic_version_and_type():
    good = wire.encode_reply(None)
    with pytest.raises(BadFrame):
        wire.decode_header(b"ZZ" + good[2 : wire.HEADER_SIZE])
    with pytest.raises(BadFrame):
        wire.decode_header(good[:2] + b"\x63" + good[3 : wire.HEADER_SIZE])
    with pytest.raises(BadFrame):
        wire.decode_header(good[:3] + b"\x09" + good[4 : wire.HEADER_SIZE])
    with pytest.raises(TruncatedFrame):
        wire.decode_header(good[:5])


def test_unknown_tag_rejected():
    with pytest.raises(BadFrame):
        wire.decode_value(b"\xfe")


def test_depth_limit_is_enforced_both_ways():
    nested = []
    for _ in range(wire.MAX_DEPTH + 2):
        nested = [nested]
    with pytest.raises(BadFrame):
        wire.encode_value(nested)
    # Hand-rolled deep payload (decoder side).
    payload = b"\x07\x00\x00\x00\x01" * (wire.MAX_DEPTH + 2) + b"\x00"
    with pytest.raises((BadFrame, TruncatedFrame)):
        wire.decode_value(payload)


def test_unencodable_type_is_an_explicit_error():
    with pytest.raises(BadFrame):
        wire.encode_value(object())


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=200)
def test_random_payloads_never_crash_the_decoder(data):
    """Garbage decodes to a value or raises a WireError — nothing else."""
    try:
        wire.decode_value(data)
    except (BadFrame, TruncatedFrame):
        pass
    except ReproError as exc:  # pragma: no cover - defensive
        raise AssertionError(f"unexpected error class {type(exc)}") from exc
