"""Property tests for the wire codec (repro.net.wire).

Round-trips arbitrary requests, replies and errors through the binary
encoding, and checks the explicit safety guards: oversized frames are
rejected (never truncated) on both encode and decode, truncated payloads
raise :class:`TruncatedFrame`, corrupted headers raise :class:`BadFrame`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.block.server import TasResult
from repro.block.stable import _Intention
from repro.capability import Capability
from repro.core.service import VersionHandle
from repro.errors import (
    BadFrame,
    CommitConflict,
    FrameTooLarge,
    RemoteCallError,
    ReproError,
    TruncatedFrame,
    WireVersionMismatch,
)
from repro.net import wire

# -- strategies -------------------------------------------------------------

capabilities = st.builds(
    Capability,
    port=st.integers(min_value=0, max_value=(1 << 48) - 1),
    obj=st.integers(min_value=1, max_value=(1 << 64) - 1),
    rights=st.integers(min_value=0, max_value=(1 << 16) - 1),
    check=st.integers(min_value=0, max_value=(1 << 48) - 1),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 256), max_value=1 << 256),
    st.floats(allow_nan=False),
    st.binary(max_size=256),
    st.text(max_size=64),
    capabilities,
    st.builds(VersionHandle, version=capabilities, file=capabilities),
    st.builds(TasResult, success=st.booleans(), current=st.binary(max_size=64)),
    st.builds(
        _Intention,
        kind=st.sampled_from(["write", "free", "reserve"]),
        account=st.integers(min_value=0, max_value=1 << 32),
        block_no=st.integers(min_value=0, max_value=1 << 32),
        data=st.binary(max_size=64),
    ),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=16), st.integers(), st.binary(max_size=8)),
            children,
            max_size=6,
        ),
    ),
    max_leaves=24,
)

params = st.dictionaries(st.text(max_size=24), values, max_size=6)


# -- round trips ------------------------------------------------------------


@given(value=values)
@settings(max_examples=200)
def test_value_round_trip(value):
    assert wire.decode_value(wire.encode_value(value)) == value


request_ids = st.integers(min_value=0, max_value=wire.MAX_REQUEST_ID)


@given(
    sender=st.text(max_size=32),
    command=st.text(max_size=32),
    params=params,
    request_id=request_ids,
)
@settings(max_examples=100)
def test_request_round_trip(sender, command, params, request_id):
    frame = wire.encode_request(sender, command, params, request_id=request_id)
    frame_type, rid, length = wire.decode_header(frame[: wire.HEADER_SIZE])
    assert frame_type == wire.FRAME_REQUEST
    assert rid == request_id
    assert length == len(frame) - wire.HEADER_SIZE
    assert wire.decode_request(frame[wire.HEADER_SIZE :]) == (
        sender,
        command,
        params,
    )


@given(value=values, request_id=request_ids)
@settings(max_examples=100)
def test_reply_round_trip(value, request_id):
    frame = wire.encode_reply(value, request_id=request_id)
    frame_type, rid, length = wire.decode_header(frame[: wire.HEADER_SIZE])
    assert frame_type == wire.FRAME_REPLY
    assert rid == request_id
    assert wire.decode_value(frame[wire.HEADER_SIZE :]) == value


@given(message=st.text(max_size=128), request_id=request_ids)
def test_error_round_trip_repro_error(message, request_id):
    frame = wire.encode_error(CommitConflict(message), request_id=request_id)
    frame_type, rid, _ = wire.decode_header(frame[: wire.HEADER_SIZE])
    assert frame_type == wire.FRAME_ERROR
    assert rid == request_id
    exc = wire.decode_error(frame[wire.HEADER_SIZE :])
    assert type(exc) is CommitConflict
    assert str(exc) == message


@given(request_id=st.one_of(
    st.integers(max_value=-1),
    st.integers(min_value=wire.MAX_REQUEST_ID + 1),
))
def test_out_of_range_request_id_rejected_on_encode(request_id):
    with pytest.raises(BadFrame):
        wire.encode_reply(None, request_id=request_id)


def test_error_round_trip_builtin_and_unknown():
    exc = wire.decode_error(
        wire.encode_error(ValueError("bad range"))[wire.HEADER_SIZE :]
    )
    assert type(exc) is ValueError and str(exc) == "bad range"

    class Exotic(Exception):
        pass

    exc = wire.decode_error(wire.encode_error(Exotic("huh"))[wire.HEADER_SIZE :])
    assert type(exc) is RemoteCallError
    assert "Exotic" in str(exc) and "huh" in str(exc)


def test_error_decode_never_widens_to_non_repro_class():
    # A hostile error frame naming a non-exception attribute of the errors
    # module must not be instantiated.
    payload = wire.encode_value(("annotations", "x"))
    exc = wire.error_to_exception("annotations", "x")
    assert isinstance(exc, RemoteCallError)
    assert isinstance(wire.decode_error(payload), RemoteCallError)


# -- oversize guard ---------------------------------------------------------


def test_encode_rejects_oversized_frame():
    with pytest.raises(FrameTooLarge):
        wire.encode_reply(b"x" * 100, max_frame=64)


def test_decode_header_rejects_oversized_announcement():
    frame = wire.encode_reply(b"y" * 512)
    with pytest.raises(FrameTooLarge):
        wire.decode_header(frame[: wire.HEADER_SIZE], max_frame=64)


@given(value=values)
@settings(max_examples=50)
def test_oversize_is_all_or_nothing(value):
    """A value either encodes completely within the limit or raises —
    there is no silently truncated frame."""
    try:
        frame = wire.encode_reply(value, max_frame=256)
    except FrameTooLarge:
        return
    assert len(frame) <= 256
    assert wire.decode_value(frame[wire.HEADER_SIZE :]) == value


# -- truncation and corruption ----------------------------------------------


@given(value=values)
@settings(max_examples=100)
def test_truncated_payload_raises_cleanly(value):
    payload = wire.encode_value(value)
    for cut in {0, 1, len(payload) // 2, len(payload) - 1} - {len(payload)}:
        with pytest.raises((TruncatedFrame, BadFrame)):
            wire.decode_value(payload[:cut])


def test_trailing_garbage_is_rejected():
    payload = wire.encode_value(42) + b"\x00"
    with pytest.raises(BadFrame):
        wire.decode_value(payload)


def test_bad_magic_version_and_type():
    good = wire.encode_reply(None)
    with pytest.raises(BadFrame):
        wire.decode_header(b"ZZ" + good[2 : wire.HEADER_SIZE])
    with pytest.raises(BadFrame):
        wire.decode_header(good[:2] + b"\x63" + good[3 : wire.HEADER_SIZE])
    with pytest.raises(BadFrame):
        wire.decode_header(good[:3] + b"\x09" + good[4 : wire.HEADER_SIZE])
    with pytest.raises(TruncatedFrame):
        wire.decode_header(good[:5])


def test_unknown_tag_rejected():
    with pytest.raises(BadFrame):
        wire.decode_value(b"\xfe")


def test_depth_limit_is_enforced_both_ways():
    nested = []
    for _ in range(wire.MAX_DEPTH + 2):
        nested = [nested]
    with pytest.raises(BadFrame):
        wire.encode_value(nested)
    # Hand-rolled deep payload (decoder side).
    payload = b"\x07\x00\x00\x00\x01" * (wire.MAX_DEPTH + 2) + b"\x00"
    with pytest.raises((BadFrame, TruncatedFrame)):
        wire.decode_value(payload)


def test_unencodable_type_is_an_explicit_error():
    with pytest.raises(BadFrame):
        wire.encode_value(object())


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=200)
def test_random_payloads_never_crash_the_decoder(data):
    """Garbage decodes to a value or raises a WireError — nothing else."""
    try:
        wire.decode_value(data)
    except (BadFrame, TruncatedFrame):
        pass
    except ReproError as exc:  # pragma: no cover - defensive
        raise AssertionError(f"unexpected error class {type(exc)}") from exc


# -- wire versioning (the pipelining header bump) ----------------------------


@given(version=st.integers(min_value=0, max_value=255))
def test_other_wire_versions_rejected_with_typed_error(version):
    """Every version byte except ours raises WireVersionMismatch — a
    *typed* error, distinct from plain corruption, and raised before the
    rest of the header (whose layout we cannot trust) is parsed."""
    frame = bytearray(wire.encode_reply(None))
    frame[2] = version
    if version == wire.WIRE_VERSION:
        wire.decode_header(bytes(frame[: wire.HEADER_SIZE]))
        return
    with pytest.raises(WireVersionMismatch):
        wire.decode_header(bytes(frame[: wire.HEADER_SIZE]))


def test_version_1_header_layout_is_not_misparsed():
    """An actual v1 header (magic, version=1, type, u32 length — no
    correlation id) must be refused outright: its length field sits where
    v2 keeps the request id, so 'parsing' it would read garbage."""
    import struct

    v1 = struct.pack(">2sBBI", b"AF", 1, wire.FRAME_REQUEST, 4) + b"\x00" * 4
    with pytest.raises(WireVersionMismatch):
        wire.decode_header(v1[: wire.HEADER_SIZE])
    assert issubclass(WireVersionMismatch, BadFrame)  # old catch sites hold


# -- FrameAssembler: pipelined streams reassembled from arbitrary chunks -----


frame_specs = st.lists(
    st.tuples(request_ids, st.binary(max_size=128)), min_size=1, max_size=10
)


@given(specs=frame_specs, data=st.data())
@settings(max_examples=100)
def test_assembler_reassembles_interleaved_partial_frames(specs, data):
    """A pipelined stream of reply frames, delivered in arbitrary chunk
    sizes (as TCP is free to do), comes out of the assembler as exactly
    the original frames, in order, with ids intact."""
    stream = b"".join(
        wire.encode_reply(payload, request_id=rid) for rid, payload in specs
    )
    assembler = wire.FrameAssembler()
    out = []
    i = 0
    while i < len(stream):
        step = data.draw(st.integers(min_value=1, max_value=37), label="chunk")
        out.extend(assembler.feed(stream[i : i + step]))
        i += step
    assert assembler.pending_bytes == 0
    assert [
        (frame_type, rid) for frame_type, rid, _ in out
    ] == [(wire.FRAME_REPLY, rid) for rid, _ in specs]
    assert [
        wire.decode_value(body) for _, _, body in out
    ] == [payload for _, payload in specs]


@given(specs=frame_specs)
@settings(max_examples=50)
def test_assembler_single_feed_equals_chunked_feed(specs):
    stream = b"".join(
        wire.encode_request("s", "c", {"p": payload}, request_id=rid)
        for rid, payload in specs
    )
    whole = wire.FrameAssembler().feed(stream)
    assert [(t, rid) for t, rid, _ in whole] == [
        (wire.FRAME_REQUEST, rid) for rid, _ in specs
    ]


def test_assembler_rejects_old_version_mid_stream():
    import struct

    good = wire.encode_reply(1, request_id=7)
    # A complete v1 frame: 8-byte header (no correlation id) + payload.
    v1 = struct.pack(">2sBBI", b"AF", 1, wire.FRAME_REPLY, 4) + b"\x00" * 4
    assembler = wire.FrameAssembler()
    assert [rid for _, rid, _ in assembler.feed(good)] == [7]
    with pytest.raises(WireVersionMismatch):
        assembler.feed(v1)
