"""Exhaustive interleaving check for two concurrent updates.

Hypothesis samples schedules; this module *enumerates* them.  Two client
scripts (begin / read / write / commit, with a yield between every step)
are interleaved in every possible order, and for each schedule the outcome
must match the serial oracle: whichever transaction committed first is
serialised first; the second commits iff its reads saw nothing the first
wrote; the final state is the serial replay of the committers.

With 4 yield points per script there are C(8,4) = 70 interleavings —
small enough to check them all, strong enough to catch any
schedule-dependent hole in the commit critical section.
"""

from __future__ import annotations

import itertools

from repro.errors import CommitConflict
from repro.core.pathname import PagePath
from repro.sim.sched import Scheduler
from repro.testbed import build_cluster

ROOT = PagePath.ROOT
N_PAGES = 3


def _script(fs, cap, reads, writes, tag, outcome):
    """begin; reads...; writes...; commit — one yield between steps."""
    handle = fs.create_version(cap)
    yield
    seen = []
    for page in reads:
        seen.append(fs.read_page(handle.version, PagePath.of(page)))
        yield
    for page in writes:
        fs.write_page(handle.version, PagePath.of(page), tag)
        yield
    try:
        fs.commit(handle.version)
        outcome["committed"] = True
        outcome["seen"] = seen
    except CommitConflict:
        outcome["committed"] = False
    yield


def _run_schedule(schedule, spec_a, spec_b):
    cluster = build_cluster(seed=1000)
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(N_PAGES):
        fs.append_page(setup.version, ROOT, b"init%d" % i)
    fs.commit(setup.version)

    out_a: dict = {}
    out_b: dict = {}
    sched = Scheduler()
    sched.spawn("A", _script(fs, cap, *spec_a, b"A-wrote", out_a))
    sched.spawn("B", _script(fs, cap, *spec_b, b"B-wrote", out_b))
    sched.run(order=iter(schedule))
    final = {
        i: fs.read_page(fs.current_version(cap), PagePath.of(i))
        for i in range(N_PAGES)
    }
    return out_a, out_b, final


def _oracle(schedule_outcomes, spec_a, spec_b):
    """Serial replay in commit order; returns the expected final state and
    which of the two had to commit."""
    state = {i: b"init%d" % i for i in range(N_PAGES)}
    commit_order = schedule_outcomes  # list of ("A"/"B", reads, writes)
    committed = []
    for name, reads, writes in commit_order:
        prior_writes = set()
        for earlier_name, _, earlier_writes in committed:
            prior_writes.update(earlier_writes)
        if set(reads) & prior_writes:
            continue  # must have aborted
        committed.append((name, reads, writes))
        tag = b"%s-wrote" % name.encode()
        for page in writes:
            state[page] = tag
    return state, {name for name, _, __ in committed}


def _check_all_interleavings(spec_a, spec_b):
    import math

    steps_a = 1 + len(spec_a[0]) + len(spec_a[1]) + 1
    steps_b = 1 + len(spec_b[0]) + len(spec_b[1]) + 1
    total = steps_a + steps_b
    expected_count = math.comb(total, steps_a)
    count = 0
    for positions in itertools.combinations(range(total), steps_a):
        # Build a pick sequence: at each global step, step task A (index 0
        # among live) or B.  Using absolute names via live-list indices:
        # while both live, 0 = A, 1 = B; after one dies the modulo in the
        # scheduler keeps picks valid.
        picks = [0 if i in set(positions) else 1 for i in range(total)]
        out_a, out_b, final = _run_schedule(picks, spec_a, spec_b)
        # Determine actual commit order from outcomes: the one that
        # committed while the other had not yet (we infer from who
        # committed; if both did, order is the schedule's commit order —
        # reconstruct by which one's writes survived where overwritten).
        order = []
        if out_a["committed"] and out_b["committed"]:
            # Overlapping blind writes: later committer's tag survives.
            overlap = set(spec_a[1]) & set(spec_b[1])
            if overlap:
                page = next(iter(overlap))
                later = "A" if final[page] == b"A-wrote" else "B"
                first = "B" if later == "A" else "A"
                order = [first, later]
            else:
                order = ["A", "B"]  # order irrelevant when disjoint
        elif out_a["committed"]:
            order = ["A", "B"]
        else:
            order = ["B", "A"]
        named = {"A": spec_a, "B": spec_b}
        expected_state, expected_committers = _oracle(
            [(name, named[name][0], named[name][1]) for name in order],
            spec_a,
            spec_b,
        )
        actual_committers = {
            name
            for name, out in (("A", out_a), ("B", out_b))
            if out["committed"]
        }
        assert actual_committers == expected_committers, (
            picks,
            actual_committers,
            expected_committers,
        )
        assert final == expected_state, (picks, final, expected_state)
        count += 1
    assert count == expected_count
    return count


def test_conflicting_pair_all_interleavings():
    """A reads page 0 and writes page 1; B writes page 0: every schedule
    must yield one of the two serialisable outcomes."""
    checked = _check_all_interleavings(((0,), (1,)), ((), (0,)))
    assert checked == 35  # C(7,4): 4 steps for A, 3 for B


def test_disjoint_pair_all_interleavings():
    """Fully disjoint updates: both must commit under every schedule."""
    checked = _check_all_interleavings(((0,), (0,)), ((1,), (1,)))
    assert checked == 70  # C(8,4)


def test_blind_write_same_page_all_interleavings():
    """Blind write/write on one page: both commit; the later wins."""
    checked = _check_all_interleavings(((), (2,)), ((), (2,)))
    assert checked > 0
