"""Sharded block storage: placement, balance, failover, batched flushes."""

import pytest

from repro.errors import ServerUnreachable
from repro.block.sharding import (
    RetryPolicy,
    ShardedBlockClient,
    ShardedBlockService,
    ShardMap,
)
from repro.core.pathname import PagePath
from repro.obs import Recorder
from repro.obs.report import render_shard_table
from repro.sim.network import Network
from repro.testbed import build_sharded_cluster

ROOT = PagePath.ROOT

PORTS = [0x700, 0x701, 0x702, 0x703]


@pytest.fixture
def recorder():
    return Recorder()


@pytest.fixture
def net(recorder):
    network = Network(recorder=recorder)
    recorder.bind_clock(network.clock)
    return network


@pytest.fixture
def service(net):
    return ShardedBlockService(net, PORTS, capacity=64, block_size=256)


@pytest.fixture
def client(net, service):
    return service.client("cli", account=1)


# ---------------------------------------------------------------------------
# the placement map
# ---------------------------------------------------------------------------


def test_shard_map_round_trips_every_number():
    shard_map = ShardMap(4, stride=100)
    for shard in range(4):
        for local in (1, 37, 100):
            block = shard_map.global_of(shard, local)
            assert shard_map.shard_of(block) == shard
            assert shard_map.local_of(block) == local


def test_shard_map_slices_are_disjoint_and_contiguous():
    shard_map = ShardMap(3, stride=10)
    owners = [shard_map.shard_of(block) for block in range(1, 31)]
    assert owners == [0] * 10 + [1] * 10 + [2] * 10


def test_shard_map_rejects_out_of_range():
    shard_map = ShardMap(2, stride=10)
    with pytest.raises(ValueError):
        shard_map.shard_of(21)  # beyond the last shard's slice
    with pytest.raises(ValueError):
        shard_map.shard_of(0)  # nil is never placed
    with pytest.raises(ValueError):
        shard_map.global_of(0, 11)  # local number beyond the stride
    with pytest.raises(ValueError):
        ShardMap(0)


def test_pair_capacity_must_fit_inside_the_stride(net):
    with pytest.raises(ValueError):
        ShardedBlockService(net, [0x900], capacity=32, stride=16)


def test_client_port_count_must_match_map(net):
    with pytest.raises(ValueError):
        ShardedBlockClient(net, "cli", [0x900, 0x901], 1, shard_map=ShardMap(3))


# ---------------------------------------------------------------------------
# placement and balance
# ---------------------------------------------------------------------------


def test_allocations_spread_round_robin(service, client, recorder):
    blocks = [client.allocate_write(b"data %d" % i) for i in range(20)]
    assert len(set(blocks)) == 20
    assert service.allocation_counts() == [5, 5, 5, 5]
    for shard in range(4):
        assert recorder.metrics.counter(f"shard.s{shard}.allocs").value == 5


def test_reads_route_back_to_the_writing_shard(service, client):
    payloads = {
        client.allocate_write(b"payload %d" % i): b"payload %d" % i
        for i in range(8)
    }
    for block, payload in payloads.items():
        assert client.read(block) == payload
    assert service.consistent()


def test_recover_unions_all_shards(service, client):
    blocks = sorted(client.allocate_write(b"b%d" % i) for i in range(8))
    assert client.recover() == blocks


# ---------------------------------------------------------------------------
# batching
# ---------------------------------------------------------------------------


def test_write_many_ships_one_transaction_per_touched_shard(
    service, client, recorder
):
    blocks = [client.allocate() for _ in range(8)]  # two per shard
    writes = [(block, b"batched %d" % i) for i, block in enumerate(blocks)]
    before = recorder.metrics.counter("rpc.write_many").value
    assert client.write_many(writes) == 8
    assert recorder.metrics.counter("rpc.write_many").value - before == 4
    for block, payload in writes:
        assert client.read(block) == payload
    assert service.consistent()


def test_write_many_replicates_to_both_halves(service, client):
    blocks = [client.allocate() for _ in range(4)]  # one per shard
    client.write_many([(block, b"both halves") for block in blocks])
    for block in blocks:
        shard = client.map.shard_of(block)
        local = client.map.local_of(block)
        pair = service.pair(shard)
        assert pair.disk_a.read(local) == pair.disk_b.read(local) == b"both halves"


# ---------------------------------------------------------------------------
# failover
# ---------------------------------------------------------------------------


def test_half_failover_within_a_shard(service, client):
    block = client.allocate_write(b"survives")
    service.pair(client.map.shard_of(block)).a.crash()
    assert client.read(block) == b"survives"


def test_allocation_skips_a_down_shard(service, client, recorder):
    for half in service.halves(0):
        half.crash()
    blocks = [client.allocate_write(b"x%d" % i) for i in range(6)]
    assert all(client.map.shard_of(block) != 0 for block in blocks)
    assert service.allocation_counts() == [0, 2, 2, 2]
    assert recorder.metrics.counter("shard.alloc_failover").value >= 1


def test_placed_reads_retry_with_backoff_then_fail(service, client, net, recorder):
    block = client.allocate_write(b"gone")
    for half in service.halves(client.map.shard_of(block)):
        half.crash()
    before = net.clock.now
    with pytest.raises(ServerUnreachable):
        client.read(block)
    # Three attempts, separated by 40- and 80-tick backoffs.
    assert recorder.metrics.counter("shard.retry").value == 3
    assert net.clock.now - before >= 120


def test_retry_policy_bridges_a_transient_outage(net, service):
    client = service.client(
        "cli", account=1, retry=RetryPolicy(attempts=3, backoff_ticks=40)
    )
    block = client.allocate_write(b"still here")
    shard = client.map.shard_of(block)
    a, b = service.halves(shard)
    a.crash()
    b.crash()
    # The pair restarts before the client gives up (restart needs no resync
    # here: nothing was written while either half was down).
    a.restart()
    b.restart()
    a.resync()
    b.resync()
    assert client.read(block) == b"still here"


def test_shard_half_recovers_via_resync(service, client):
    block = client.allocate_write(b"v1")
    pair = service.pair(client.map.shard_of(block))
    pair.b.crash()
    client.write(block, b"v2")
    pair.b.restart()
    assert pair.b.resync() >= 1
    assert pair.disk_b.read(client.map.local_of(block)) == b"v2"
    assert service.consistent()


# ---------------------------------------------------------------------------
# the sharded deployment, end to end
# ---------------------------------------------------------------------------


def test_sharded_cluster_spreads_files_across_all_shards():
    recorder = Recorder()
    cluster = build_sharded_cluster(shards=4, servers=1, seed=3, recorder=recorder)
    fs = cluster.fs()
    caps = []
    for i in range(8):
        cap = fs.create_file(b"file %d" % i)
        handle = fs.create_version(cap)
        fs.append_page(handle.version, ROOT, b"page for %d" % i)
        fs.commit(handle.version)
        caps.append(cap)
    for i, cap in enumerate(caps):
        current = fs.current_version(cap)
        assert fs.read_page(current, ROOT) == b"file %d" % i
        assert fs.read_page(current, PagePath.of(0)) == b"page for %d" % i
    # Acceptance: every shard took allocations, and the per-shard metrics
    # surface them (the same counters ``repro stats`` renders).
    assert all(count > 0 for count in cluster.shards.allocation_counts())
    for shard in range(4):
        assert recorder.metrics.counter(f"shard.s{shard}.allocs").value > 0
    table = render_shard_table(recorder.metrics)
    assert "s0" in table and "s3" in table
    assert cluster.shards.consistent()


def test_sharded_cluster_commits_survive_a_half_crash():
    cluster = build_sharded_cluster(shards=2, servers=1, seed=5)
    fs = cluster.fs()
    cap = fs.create_file(b"durable")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"committed before crash")
    fs.commit(handle.version)
    for pair in cluster.shards.pairs:
        pair.a.crash()
    assert (
        fs.read_page(fs.current_version(cap), ROOT) == b"committed before crash"
    )


def _commit_message_count(batch: bool):
    """Messages charged to one 7-page commit, batched or page-by-page."""
    recorder = Recorder()
    cluster = build_sharded_cluster(shards=4, servers=1, seed=9, recorder=recorder)
    fs = cluster.fs()
    fs.store.batch_flushes = batch
    cap = fs.create_file(b"seed")
    handle = fs.create_version(cap)
    for i in range(6):
        fs.append_page(handle.version, ROOT, b"page %d" % i)
    recorder.tracer.clear()
    fs.commit(handle.version)
    (span,) = recorder.tracer.spans_named("commit")
    messages = sum(s.counters.get("net.messages", 0) for s in span.walk())
    return messages, span.find("flush")


def test_whole_pair_outage_during_batched_commit_flush():
    """Both halves of one shard die mid-update: the batched ``write_many``
    flush loses that shard's group, the commit must fail cleanly without
    disturbing the committed state, and after the pair restarts and
    resyncs a redo of the update goes through."""
    from repro.tools.check import check_cluster

    cluster = build_sharded_cluster(shards=4, servers=1, seed=11)
    fs = cluster.fs()
    cap = fs.create_file(b"seed")
    setup = fs.create_version(cap)
    for i in range(6):
        fs.append_page(setup.version, ROOT, b"old %d" % i)
    fs.commit(setup.version)

    handle = fs.create_version(cap)
    for i in range(6):
        fs.write_page(handle.version, PagePath.of(i), b"new %d" % i)
    pair = cluster.shards.pair(1)
    pair.a.crash()
    pair.b.crash()
    with pytest.raises(ServerUnreachable):
        fs.commit(handle.version)

    pair.a.restart()
    pair.b.restart()
    pair.a.resync()
    pair.b.resync()
    # The committed state never moved: every page still reads pre-update.
    current = fs.current_version(cap)
    for i in range(6):
        assert fs.read_page(current, PagePath.of(i)) == b"old %d" % i
    # The client's redo path: abort the stranded update, run it again.
    fs.abort(handle.version)
    redo = fs.create_version(cap)
    for i in range(6):
        fs.write_page(redo.version, PagePath.of(i), b"new %d" % i)
    fs.commit(redo.version)
    current = fs.current_version(cap)
    for i in range(6):
        assert fs.read_page(current, PagePath.of(i)) == b"new %d" % i
    assert cluster.shards.consistent()
    assert check_cluster(cluster).ok


def test_foreign_server_cannot_touch_an_in_flight_update():
    """An uncommitted version's pages may still sit in its manager's
    deferred write buffer; a replica that cannot see that buffer must
    refuse to read, write, or commit the version (else a failover commit
    would publish a version whose pages are not durable)."""
    from repro.errors import NotManagingServer

    cluster = build_sharded_cluster(shards=2, servers=2, seed=13)
    fs0, fs1 = cluster.fs(0), cluster.fs(1)
    cap = fs0.create_file(b"seed")
    setup = fs0.create_version(cap)
    fs0.append_page(setup.version, ROOT, b"page 0")
    fs0.commit(setup.version)

    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, PagePath.of(0), b"in flight")
    with pytest.raises(NotManagingServer):
        fs1.write_page(handle.version, PagePath.of(0), b"hijack")
    with pytest.raises(NotManagingServer):
        fs1.commit(handle.version)
    # The managing server itself is unaffected.
    fs0.commit(handle.version)
    assert fs1.read_page(fs1.current_version(cap), PagePath.of(0)) == b"in flight"


def test_batched_flush_reduces_messages_per_commit():
    """Acceptance: the batched flush path costs fewer network messages per
    commit than the seed's page-by-page path, measured on the commit
    span's per-commit message counters."""
    batched_messages, batched_flush = _commit_message_count(True)
    plain_messages, plain_flush = _commit_message_count(False)
    assert batched_flush.tags["batched"] is True
    assert plain_flush.tags["batched"] is False
    assert batched_flush.tags["pages"] == plain_flush.tags["pages"] == 7
    assert batched_messages < plain_messages
