"""The garbage collector: sweep, reshare, reap, history pruning."""

import pytest

from repro.errors import CommitConflict
from repro.core.pathname import PagePath
from repro.sim.sched import Scheduler

ROOT = PagePath.ROOT


def _allocated(cluster):
    return set(cluster.fs().store.blocks.recover())


def test_clean_system_sweeps_nothing(cluster):
    fs = cluster.fs()
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"y")
    fs.commit(handle.version)
    stats = cluster.gc().collect()
    assert stats.swept == 0
    assert fs.read_page(fs.current_version(cap), ROOT) == b"y"


def test_aborted_version_leftovers_are_swept(cluster):
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(3):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    before = _allocated(cluster)
    # A conflicting update leaves merge-orphaned blocks behind.
    va = fs.create_version(cap)
    vb = fs.create_version(cap)
    fs.read_page(vb.version, PagePath.of(0))
    fs.write_page(va.version, PagePath.of(0), b"win")
    fs.write_page(vb.version, PagePath.of(1), b"lose")
    fs.commit(va.version)
    with pytest.raises(CommitConflict):
        fs.commit(vb.version)
    cluster.gc().collect()
    after = _allocated(cluster)
    # Everything the failed update allocated has been reclaimed; only the
    # winner's shadow pages (root + child 0) remain beyond the baseline.
    assert len(after - before) <= 2
    assert fs.read_page(fs.current_version(cap), PagePath.of(0)) == b"win"


def test_reshare_reclaims_read_copies(cluster):
    """"The garbage collector may remove pages that were copied but not
    written or modified and reshare the corresponding page"."""
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    deep = fs.append_page(setup.version, ROOT, b"leafdata")
    fs.commit(setup.version)
    baseline = len(_allocated(cluster))
    # A read-only... almost: reads force shadow copies.
    handle = fs.create_version(cap)
    assert fs.read_page(handle.version, deep) == b"leafdata"
    fs.commit(handle.version)
    grown = len(_allocated(cluster))
    assert grown > baseline  # read copies exist
    stats = cluster.gc().collect()
    assert stats.reshared >= 1
    assert stats.swept >= 1
    shrunk = len(_allocated(cluster))
    assert shrunk < grown
    # Data still correct.
    assert fs.read_page(fs.current_version(cap), deep) == b"leafdata"


def test_reshare_preserves_write_information(cluster):
    """Resharing must not touch subtrees containing writes — later
    serialisability tests still need the W flags."""
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    a = fs.append_page(setup.version, ROOT, b"a")
    b = fs.append_page(setup.version, ROOT, b"b")
    fs.commit(setup.version)
    writer = fs.create_version(cap)
    fs.write_page(writer.version, a, b"a2")
    fs.read_page(writer.version, b)  # a read copy, resharable
    fs.commit(writer.version)
    cluster.gc().collect()
    # The write's W flag must still be discoverable by a validation that
    # starts from the version just before it (index 1: the setup version).
    discards, _ = fs.validate_cache(cap, fs.committed_versions(cap)[1])
    assert discards == [PagePath.of(0)]  # only the write; the read-copy
    # of `b` was reshared without inventing a phantom write.
    assert fs.read_page(fs.current_version(cap), b) == b"b"


def test_reap_orphans_of_dead_server(cluster2):
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs0.create_file(b"x")
    handle = fs0.create_version(cap)
    fs0.write_page(handle.version, ROOT, b"doomed")
    fs0.store.flush()
    fs0.crash()
    gc = cluster2.gc(1)
    stats = gc.collect()
    assert stats.reaped_versions == 1
    # The file is intact and updatable via the surviving server.
    h2 = fs1.create_version(cap)
    fs1.write_page(h2.version, ROOT, b"alive")
    fs1.commit(h2.version)
    assert fs1.read_page(fs1.current_version(cap), ROOT) == b"alive"


def test_truncate_history(cluster):
    fs = cluster.fs()
    cap = fs.create_file(b"r0")
    for n in range(1, 5):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"r%d" % n)
        fs.commit(handle.version)
    assert len(fs.committed_versions(cap)) == 5
    gc = cluster.gc()
    pruned = gc.truncate_history(cap, keep=2)
    assert pruned == 3
    remaining = fs.committed_versions(cap)
    assert [fs.read_page(v, ROOT) for v in remaining] == [b"r3", b"r4"]
    swept = gc.collect().swept
    assert swept >= 3  # the pruned version pages at least
    assert fs.read_page(fs.current_version(cap), ROOT) == b"r4"


def test_truncate_history_keep_all_is_noop(cluster):
    fs = cluster.fs()
    cap = fs.create_file(b"only")
    gc = cluster.gc()
    assert gc.truncate_history(cap, keep=3) == 0
    with pytest.raises(ValueError):
        gc.truncate_history(cap, keep=0)


def test_gc_runs_in_parallel_with_updates(cluster):
    """The abstract's claim: the collector runs in parallel with live
    operation — interleaved here, with updates committing mid-cycle."""
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(4):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)

    def updates():
        for round_ in range(5):
            handle = fs.create_version(cap)
            fs.write_page(handle.version, PagePath.of(round_ % 4), b"u%d" % round_)
            yield
            fs.commit(handle.version)
            yield

    def collector():
        stats = yield from cluster.gc().run_incremental()
        return stats

    sched = Scheduler()
    sched.spawn("updates", updates())
    gc_task = sched.spawn("gc", collector())
    sched.run()
    assert gc_task.result is not None
    # All updates landed despite the concurrent collection.
    current = fs.current_version(cap)
    assert fs.read_page(current, PagePath.of(0)) == b"u4"
    # Nothing live was swept: every page still readable.
    for i in range(4):
        fs.read_page(current, PagePath.of(i))
    # A follow-up full collection finds a stable state.
    cluster.gc().collect()
    for i in range(4):
        fs.read_page(fs.current_version(cap), PagePath.of(i))


def test_gc_respects_in_flight_super_update(cluster):
    """A GC cycle during a super-file update must neither free the
    sub-versions' pages nor reshare under them."""
    from repro.core.system_tree import SystemTree

    fs = cluster.fs()
    tree = SystemTree(fs)
    parent = fs.create_file(b"P")
    handle = fs.create_version(parent)
    sub = tree.create_subfile(handle.version, ROOT, initial_data=b"S v1")
    fs.commit(handle.version)

    update = tree.begin_super_update(parent)
    hs = tree.open_subfile(update, sub)
    fs.write_page(hs.version, ROOT, b"S v2-pending")
    stats = cluster.gc().collect()
    # The in-flight versions' pages were marked live: nothing of theirs
    # was swept, and the update completes normally afterwards.
    tree.commit_super(update)
    assert fs.read_page(fs.current_version(sub), ROOT) == b"S v2-pending"


def test_aborted_registry_entries_purged(cluster):
    fs = cluster.fs()
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.abort(handle.version)
    assert fs.registry.version(handle.version.obj).status == "aborted"
    cluster.gc().collect()
    from repro.errors import NoSuchVersion

    with pytest.raises(NoSuchVersion):
        fs.registry.version(handle.version.obj)


# ---------------------------------------------------------------------------
# rewriting committed version pages (GC vs. concurrent commits)
# ---------------------------------------------------------------------------


def _current_root(fs, cap):
    return fs.registry.version(fs.current_version(cap).obj).root_block


def test_rewrite_version_page_preserves_a_concurrent_commit(cluster):
    """The reshare write-back races the commit critical section: a
    whole-page write of a stale copy would reset the commit reference to
    nil and let a second successor fork the chain.  The rewrite primitive
    must leave a concurrently-set commit reference standing."""
    fs = cluster.fs()
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"v1")
    fs.commit(handle.version)
    store = fs.store
    root = _current_root(fs, cap)

    stale = store.load(root, fresh=True).clone()
    # A successor commits between the GC's read and its write-back.
    assert store.tas_commit_ref(root, 424242).success
    assert store.rewrite_version_page(root, stale)
    assert store.read_commit_ref(root) == 424242


def test_rewrite_version_page_can_cut_base_ref(cluster):
    from repro.core.page import NIL

    fs = cluster.fs()
    cap = fs.create_file(b"x")
    for payload in (b"v1", b"v2"):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, payload)
        fs.commit(handle.version)
    store = fs.store
    root = _current_root(fs, cap)
    page = store.load(root, fresh=True).clone()
    assert page.base_ref != NIL
    page.base_ref = NIL
    assert store.rewrite_version_page(root, page, keep_base=False)
    assert store.load(root, fresh=True).base_ref == NIL


def test_rewrite_version_page_refuses_a_resized_page(cluster):
    """If the durable page changed shape since the caller loaded it, the
    rewrite must fail (and drop its cache entry) instead of clobbering."""
    from repro.core.page import Flags, PageRef

    fs = cluster.fs()
    cap = fs.create_file(b"x")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"v1")
    fs.commit(handle.version)
    store = fs.store
    root = _current_root(fs, cap)

    stale = store.load(root, fresh=True).clone()
    moved = stale.clone()
    moved.append_ref(PageRef(123, Flags()))
    store.blocks.write(root, moved.to_bytes())
    store.cache.invalidate(root)
    assert store.rewrite_version_page(root, stale) is False
    assert store.load(root, fresh=True).nrefs == moved.nrefs


def test_unflushed_foreign_root_skips_sweep(cluster2):
    """Another replica's in-flight update has allocated its shadow root
    but not flushed it; a GC cycle on this replica cannot traverse that
    subtree, so it must skip its sweep rather than free live blocks."""
    fs0, fs1 = cluster2.fs(0), cluster2.fs(1)
    cap = fs1.create_file(b"root")
    setup = fs1.create_version(cap)
    fs1.append_page(setup.version, ROOT, b"c0")
    fs1.commit(setup.version)

    live = fs1.create_version(cap)
    fs1.write_page(live.version, PagePath.of(0), b"pending")
    stats = cluster2.gc(0).collect()
    assert stats.mark_incomplete
    assert stats.sweep_skipped
    assert stats.swept == 0
    # The update is unharmed: its manager can still flush and commit it.
    fs1.commit(live.version)
    assert fs1.read_page(fs1.current_version(cap), PagePath.of(0)) == b"pending"
