"""Whole-system fuzzing: random operation sequences, checked by fsck.

The paper's strongest property — "the file system is always in a
consistent state" — restated as a machine-checked invariant: after ANY
sequence of operations (updates, commits, aborts, structural changes,
garbage collection, server crashes and restarts), the invariant checker
must pass and all committed data must still read back.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.errors import CommitConflict, FileLocked, ReproError
from repro.core.pathname import PagePath
from repro.testbed import build_cluster, build_hybrid_cluster
from repro.tools.check import check_cluster

ROOT = PagePath.ROOT

# One fuzz step: (operation name, two parameter knobs).
step_strategy = st.tuples(
    st.sampled_from(
        [
            "begin",
            "write",
            "read",
            "append",
            "remove",
            "hole",
            "split",
            "move",
            "commit",
            "abort",
            "gc",
            "crash",
            "new_file",
        ]
    ),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
)


class _Fuzzer:
    """Drives a cluster with random-but-valid operations and tracks the
    expected committed state of every file's root page."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.files: list = []
        self.expected_root: dict[int, bytes] = {}
        self.open_updates: list = []  # (file_cap, handle, pending_root or None)
        self.counter = 0

    def fs(self):
        for server in self.cluster.servers:
            if not server._crashed:
                return server
        self.cluster.servers[0].restart()
        return self.cluster.servers[0]

    def step(self, op: str, a: int, b: int) -> None:
        fs = self.fs()
        self.counter += 1
        try:
            if op == "new_file" or not self.files:
                data = b"genesis%d" % self.counter
                cap = fs.create_file(data)
                self.files.append(cap)
                self.expected_root[cap.obj] = data
                return
            cap = self.files[a % len(self.files)]
            if op == "begin":
                handle = fs.create_version(cap)
                self.open_updates.append([cap, handle, None])
            elif op in (
                "write", "read", "append", "remove", "hole", "split", "move"
            ) and self.open_updates:
                entry = self.open_updates[b % len(self.open_updates)]
                cap_u, handle, _ = entry
                if op == "write":
                    data = b"w%d" % self.counter
                    fs.write_page(handle.version, ROOT, data)
                    entry[2] = data
                elif op == "read":
                    fs.read_page(handle.version, ROOT)
                elif op == "append":
                    fs.append_page(handle.version, ROOT, b"a%d" % self.counter)
                elif op == "remove":
                    structure = fs.page_structure(handle.version, ROOT)
                    if structure:
                        fs.remove_page(
                            handle.version, PagePath.of(b % len(structure))
                        )
                elif op == "hole":
                    structure = fs.page_structure(handle.version, ROOT)
                    if structure and structure[b % len(structure)]:
                        fs.make_hole(
                            handle.version, PagePath.of(b % len(structure))
                        )
                elif op == "split":
                    structure = fs.page_structure(handle.version, ROOT)
                    if structure and structure[b % len(structure)]:
                        fs.split_page(
                            handle.version, PagePath.of(b % len(structure)), 0
                        )
                elif op == "move":
                    structure = fs.page_structure(handle.version, ROOT)
                    if len(structure) >= 2 and structure[b % len(structure)]:
                        fs.move_subtree(
                            handle.version,
                            PagePath.of(b % len(structure)),
                            ROOT,
                            a % len(structure),
                        )
            elif op == "commit" and self.open_updates:
                entry = self.open_updates.pop(b % len(self.open_updates))
                cap_u, handle, pending = entry
                try:
                    fs.commit(handle.version)
                    if pending is not None:
                        self.expected_root[cap_u.obj] = pending
                except CommitConflict:
                    pass  # expected under concurrency
            elif op == "abort" and self.open_updates:
                entry = self.open_updates.pop(b % len(self.open_updates))
                fs.abort(entry[1].version)
            elif op == "gc":
                self.cluster.gc(self.cluster.servers.index(fs)).collect()
            elif op == "crash" and len(self.cluster.servers) > 1:
                victim = self.cluster.servers[a % len(self.cluster.servers)]
                if not victim._crashed:
                    victim.crash()
                    # Its open updates died with it.
                    self.open_updates = [
                        entry
                        for entry in self.open_updates
                        if fs.registry.version(entry[1].version.obj).server
                        != victim.name
                    ]
                    victim.restart()
        except (FileLocked, ReproError):
            # Valid refusals (locked, aborted-by-conflict handles, etc.).
            pass

    def verify(self) -> None:
        fs = self.fs()
        # Settle: abort whatever is still open so fsck sees a quiescent system.
        for cap_u, handle, _ in self.open_updates:
            try:
                fs.abort(handle.version)
            except ReproError:
                pass
        self.open_updates.clear()
        for cap in self.files:
            try:
                data = fs.read_page(fs.current_version(cap), ROOT)
            except ReproError as exc:  # pragma: no cover - would be a bug
                raise AssertionError(f"committed file unreadable: {exc}")
            # The root's committed data must be what the model expects —
            # commits the model recorded must never be lost.
            assert data == self.expected_root[cap.obj], (
                f"file {cap.obj}: expected {self.expected_root[cap.obj]!r}, "
                f"found {data!r}"
            )
        report = check_cluster(self.cluster)
        assert report.ok, report.errors


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(step_strategy, min_size=5, max_size=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fuzz_standard_cluster(steps, seed):
    fuzzer = _Fuzzer(build_cluster(servers=2, seed=seed))
    for op, a, b in steps:
        fuzzer.step(op, a, b)
    fuzzer.verify()


@settings(max_examples=25, deadline=None)
@given(
    steps=st.lists(step_strategy, min_size=5, max_size=25),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fuzz_hybrid_cluster(steps, seed):
    """Same fuzz over write-once optical media: any in-place rewrite of a
    data page would raise WriteOnceViolation and fail the test."""
    fuzzer = _Fuzzer(build_hybrid_cluster(seed=seed))
    for op, a, b in steps:
        if op == "crash":
            continue  # single-server hybrid fixture
        fuzzer.step(op, a, b)
    fuzzer.verify()


def test_create_file_must_not_flush_other_updates_pages():
    """Regression (found by the fuzzer): ``create_file`` flushed the whole
    dirty set, pushing an unrelated update's half-finished version page to
    disk.  When that update then freed a page it had appended (eagerly
    deallocating the block) and its server crashed, the on-disk version
    page still referenced the freed block and fsck flagged the tree."""
    cluster = build_cluster(servers=2, seed=0)
    fs = cluster.servers[0]
    cap = fs.create_file(b"genesis")
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"appended")
    # An unrelated file is created mid-update: it must flush only itself.
    fs.create_file(b"bystander")
    assert fs.store.dirty_count > 0, "the open update's pages must stay dirty"
    # The update removes the appended page (freeing its block) and dies.
    fs.remove_page(handle.version, PagePath.of(0))
    fs.crash()
    fs.restart()
    report = check_cluster(cluster)
    assert report.ok, report.errors
