"""The simulated network: delivery, latency, partitions, drops, counters."""

import pytest

from repro.errors import MessageDropped, ServerUnreachable
from repro.sim.faults import DropPolicy
from repro.sim.network import Network


@pytest.fixture
def net():
    return Network(hop_ticks=10)


def _echo(sender, payload):
    return ("echo", payload)


def test_send_delivers_and_returns_reply(net):
    net.attach("srv", _echo)
    assert net.send("cli", "srv", 42) == ("echo", 42)


def test_send_charges_two_hops(net):
    net.attach("srv", _echo)
    before = net.clock.now
    net.send("cli", "srv", None)
    assert net.clock.now - before == 20


def test_send_counts_messages(net):
    net.attach("srv", _echo)
    net.send("cli", "srv", None)
    assert net.stats.messages == 2  # request + reply


def test_unknown_destination_unreachable(net):
    with pytest.raises(ServerUnreachable):
        net.send("cli", "ghost", None)
    assert net.stats.unreachable == 1


def test_detached_node_unreachable(net):
    net.attach("srv", _echo)
    net.detach("srv")
    with pytest.raises(ServerUnreachable):
        net.send("cli", "srv", None)


def test_reattach_restores_delivery(net):
    net.attach("srv", _echo)
    net.detach("srv")
    net.reattach("srv")
    assert net.send("cli", "srv", 1) == ("echo", 1)


def test_partition_blocks_both_directions(net):
    net.attach("a", _echo)
    net.attach("b", _echo)
    net.partition("a", "b")
    with pytest.raises(ServerUnreachable):
        net.send("a", "b", None)
    with pytest.raises(ServerUnreachable):
        net.send("b", "a", None)
    # Third parties still reach both.
    assert net.send("c", "a", 1) == ("echo", 1)
    assert net.send("c", "b", 1) == ("echo", 1)


def test_heal_removes_partition(net):
    net.attach("a", _echo)
    net.partition("x", "a")
    net.heal("x", "a")
    assert net.send("x", "a", 1) == ("echo", 1)


def test_drop_policy_drops(net):
    net.attach("srv", _echo)
    net.drop_policy = DropPolicy(drop_every=2)
    net.send("cli", "srv", 1)  # message 1 passes... message seq counts sends
    with pytest.raises(MessageDropped):
        net.send("cli", "srv", 2)
    assert net.stats.drops >= 1


def test_stats_delta(net):
    net.attach("srv", _echo)
    net.send("cli", "srv", 1)
    snapshot = net.stats.snapshot()
    net.send("cli", "srv", 2)
    delta = net.stats.delta(snapshot)
    assert delta.messages == 2


def test_reachable_and_is_up(net):
    net.attach("srv", _echo)
    assert net.is_up("srv")
    assert net.reachable("cli", "srv")
    net.detach("srv")
    assert not net.is_up("srv")
    assert not net.reachable("cli", "srv")


def test_nodes_listing(net):
    net.attach("b", _echo)
    net.attach("a", _echo)
    assert net.nodes() == ["a", "b"]
