"""The benchmark tooling itself: the JSON trajectory harness and the
loud-failure result capture.

These run under tier-1 (no pytest-benchmark needed) because they guard
acceptance criteria: the group-commit reduction claim lives in
BENCH_commit.json, and a benchmark that dies mid-table must never leave
rows that read like a completed run.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
BENCHMARKS = REPO / "benchmarks"


def _load(name: str, path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_json():
    return _load("bench_json", BENCHMARKS / "bench_json.py")


def test_group_commit_reduces_cost_at_least_30_percent(bench_json):
    """The tentpole's acceptance bar: 8 concurrent non-conflicting
    updates on one server, grouped vs sequential — both commit-path
    messages and stable-storage writes drop by >= 30%."""
    result = bench_json.measure_group_commit()
    assert result["members"] == 8
    assert result["reduction_pct"]["messages"] >= 30.0
    assert result["reduction_pct"]["stable_writes"] >= 30.0
    # And the committed baseline records the same claim.
    baseline = json.loads((BENCHMARKS / "BENCH_commit.json").read_text())
    recorded = baseline["group_commit"]["reduction_pct"]
    assert recorded["messages"] >= 30.0
    assert recorded["stable_writes"] >= 30.0


def test_bench_measurements_are_deterministic(bench_json):
    assert bench_json.measure_group_commit() == bench_json.measure_group_commit()
    assert bench_json.measure_fast_commit(8) == bench_json.measure_fast_commit(8)


def test_committed_baselines_match_fresh_measurements(bench_json):
    """The committed BENCH_*.json files must be regenerable bit-for-bit —
    a PR that changes commit-path costs must refresh them (that is the
    point of the gate).  Subtrees a document declares as ``wallclock``
    (BENCH_net.json's contended-latency record) are excluded: they are
    committed as a record of a claim, not a reproducible count."""
    for filename, produce in bench_json.BENCHES.items():
        committed = json.loads((BENCHMARKS / filename).read_text())
        view = bench_json.deterministic_view
        assert view(committed) == view(produce()), (
            f"{filename} is stale: regenerate with "
            "PYTHONPATH=src python benchmarks/bench_json.py"
        )


def test_deterministic_view_strips_only_declared_wallclock(bench_json):
    doc = {
        "wallclock": ["contended", "deep.seconds"],
        "contended": {"p99": 1.23},
        "deep": {"seconds": 0.5, "messages": 42},
        "parity": {"sim": 7},
    }
    view = bench_json.deterministic_view(doc)
    assert "contended" not in view
    assert view["deep"] == {"messages": 42}
    assert view["parity"] == {"sim": 7}
    assert doc["contended"] == {"p99": 1.23}  # the original is untouched
    # Documents with no wallclock declaration pass through unchanged.
    assert bench_json.deterministic_view({"a": 1}) == {"a": 1}


def test_gate_flags_regressions_and_tolerates_noise(bench_json):
    baseline = {
        "gate": ["a.messages", "a.ticks"],
        "a": {"messages": 100, "ticks": 1000},
    }
    within = {"a": {"messages": 115, "ticks": 1000}}
    beyond = {"a": {"messages": 130, "ticks": 900}}
    assert bench_json.compare(baseline, within, "f") == []
    failures = bench_json.compare(baseline, beyond, "f")
    assert len(failures) == 1
    assert "a.messages" in failures[0]
    # A zero baseline only passes a zero measurement.
    zero = {"gate": ["a.messages"], "a": {"messages": 0}}
    assert bench_json.compare(zero, {"a": {"messages": 1}}, "f")
    assert bench_json.compare(zero, {"a": {"messages": 0}}, "f") == []


def test_reporter_abort_discards_partial_rows(tmp_path, monkeypatch):
    conftest = _load("bench_conftest", BENCHMARKS / "conftest.py")
    monkeypatch.setattr(conftest, "RESULTS", tmp_path / "results.txt")
    conftest.RESULTS.write_text("")
    reporter = conftest.Reporter("half-done-table")
    reporter.row("pages  msgs")
    reporter.row("    1     4")
    reporter.abort("ValueError: boom")
    text = conftest.RESULTS.read_text()
    assert "INCOMPLETE" in text
    assert "ValueError: boom" in text
    assert "2 partial row(s) discarded" in text
    assert "    1     4" not in text  # the rows really are gone


def test_report_fixture_fails_loudly_on_midtable_error(tmp_path):
    """End-to-end: a benchmark that raises after emitting rows leaves an
    INCOMPLETE banner in results.txt, not a truncated table."""
    (tmp_path / "conftest.py").write_text(
        (BENCHMARKS / "conftest.py").read_text()
    )
    (tmp_path / "test_dies.py").write_text(
        "def test_dies_mid_table(report):\n"
        "    report.row('pages  msgs')\n"
        "    report.row('  512   999')\n"
        "    raise ValueError('disk fell over')\n"
        "\n"
        "def test_completes(report):\n"
        "    report.row('all rows present')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=tmp_path,
    )
    assert proc.returncode == 1  # the dying test still fails the run
    results = (tmp_path / "results.txt").read_text()
    assert "== test_dies_mid_table == INCOMPLETE" in results
    assert "disk fell over" in results
    assert "  512   999" not in results
    assert "all rows present" in results  # completed tables still land
