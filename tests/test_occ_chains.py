"""Multi-generation merge chains: the rebase machinery under stress.

When a commit loses the test-and-set repeatedly, `serialise` runs against
each successive committed version; correctness across rounds depends on
the merge *rebasing* V.b's pages (base references redirected to the
version just merged against) so the next round can still correlate pages.
These tests build exactly the chains where a naive implementation loses
track.
"""

import pytest

from repro.errors import CommitConflict
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


@pytest.fixture
def wide(fs):
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(6):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    return cap


def test_two_round_merge_same_page_copied_by_intermediate(fs, wide):
    """V.b must merge against V.c and then V.d, where V.d's write hits a
    page V.c had *also* copied (read-only): the second round's correlation
    goes through V.c's copy, which only works because round one rebased."""
    vb = fs.create_version(wide)
    vc = fs.create_version(wide)
    vd_page = PagePath.of(3)
    # V.b touches page 0 only.
    fs.write_page(vb.version, PagePath.of(0), b"B")
    # V.c reads page 3 (copying it) and writes page 1.
    fs.read_page(vc.version, vd_page)
    fs.write_page(vc.version, PagePath.of(1), b"C")
    fs.commit(vc.version)
    # V.d (based on V.c's result) writes page 3 — its copy descends from
    # V.c's read-copy, not from the original.
    vd = fs.create_version(wide)
    fs.write_page(vd.version, vd_page, b"D")
    fs.commit(vd.version)
    # V.b now merges against V.c, rebases, then merges against V.d.
    fs.commit(vb.version)
    current = fs.current_version(wide)
    assert fs.read_page(current, PagePath.of(0)) == b"B"
    assert fs.read_page(current, PagePath.of(1)) == b"C"
    assert fs.read_page(current, vd_page) == b"D"
    assert fs.metrics.serialise_runs >= 2


def test_two_round_merge_with_restructure(fs, wide):
    """V.b restructured the root (M) and must correlate by base blocks
    across TWO merge rounds — the case the in-merge rebase exists for."""
    vb = fs.create_version(wide)
    fs.remove_page(vb.version, PagePath.of(5))  # M on root
    # Round one: V.c wrote deep into page 2 (copying it on the way).
    vc = fs.create_version(wide)
    fs.write_page(vc.version, PagePath.of(2), b"C2")
    fs.commit(vc.version)
    # Round two: V.d writes page 2 AGAIN — V.d's copy descends from V.c's.
    vd = fs.create_version(wide)
    fs.write_page(vd.version, PagePath.of(2), b"D2")
    fs.commit(vd.version)
    fs.commit(vb.version)
    current = fs.current_version(wide)
    # The removal survived, and the LAST write to page 2 survived with it.
    assert fs.page_structure(current, ROOT) == [1] * 5
    assert fs.read_page(current, PagePath.of(2)) == b"D2"


def test_conflict_detected_in_second_round(fs, wide):
    """No conflict with the first committed version, but a real one with
    the second: the abort must still fire."""
    vb = fs.create_version(wide)
    fs.read_page(vb.version, PagePath.of(4))  # will clash with V.d
    fs.write_page(vb.version, PagePath.of(0), b"B")
    vc = fs.create_version(wide)
    fs.write_page(vc.version, PagePath.of(1), b"C")  # disjoint from V.b
    fs.commit(vc.version)
    vd = fs.create_version(wide)
    fs.write_page(vd.version, PagePath.of(4), b"D")  # hits V.b's read
    fs.commit(vd.version)
    with pytest.raises(CommitConflict):
        fs.commit(vb.version)
    current = fs.current_version(wide)
    assert fs.read_page(current, PagePath.of(0)) == b"c0"  # V.b vanished
    assert fs.read_page(current, PagePath.of(1)) == b"C"
    assert fs.read_page(current, PagePath.of(4)) == b"D"


def test_five_concurrent_disjoint_updates_all_land(fs, wide):
    handles = [fs.create_version(wide) for _ in range(5)]
    for i, handle in enumerate(handles):
        fs.write_page(handle.version, PagePath.of(i), b"u%d" % i)
    for handle in handles:
        fs.commit(handle.version)
    current = fs.current_version(wide)
    for i in range(5):
        assert fs.read_page(current, PagePath.of(i)) == b"u%d" % i
    # The last committer merged through four rounds.
    assert fs.metrics.serialise_runs >= 4 + 3 + 2 + 1


def test_deep_tree_two_round_merge(fs):
    """The same chain dance two levels down a page tree."""
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    mid = fs.append_page(setup.version, ROOT, b"mid")
    left = fs.append_page(setup.version, mid, b"left")
    right = fs.append_page(setup.version, mid, b"right")
    extra = fs.append_page(setup.version, mid, b"extra")
    fs.commit(setup.version)
    vb = fs.create_version(cap)
    fs.write_page(vb.version, left, b"B-left")
    vc = fs.create_version(cap)
    fs.write_page(vc.version, right, b"C-right")
    fs.commit(vc.version)
    vd = fs.create_version(cap)
    fs.write_page(vd.version, extra, b"D-extra")
    fs.commit(vd.version)
    fs.commit(vb.version)
    current = fs.current_version(cap)
    assert fs.read_page(current, left) == b"B-left"
    assert fs.read_page(current, right) == b"C-right"
    assert fs.read_page(current, extra) == b"D-extra"
    assert fs.read_page(current, mid) == b"mid"


def test_merge_chain_after_gc_reshare(cluster, fs):
    """GC reshares between commits of a chain; later merges still work
    (the reshare gate only pauses while uncommitted versions exist, so
    this exercises reshare *between* generations)."""
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(4):
        fs.append_page(setup.version, ROOT, b"c%d" % i)
    fs.commit(setup.version)
    # Generation 1: a read-heavy commit, then reshare its copies.
    reader = fs.create_version(cap)
    for i in range(4):
        fs.read_page(reader.version, PagePath.of(i))
    fs.commit(reader.version)
    cluster.gc().collect()
    # Generation 2: a concurrent pair across the reshared current version.
    va = fs.create_version(cap)
    vb = fs.create_version(cap)
    fs.write_page(va.version, PagePath.of(0), b"A")
    fs.write_page(vb.version, PagePath.of(3), b"B")
    fs.commit(va.version)
    fs.commit(vb.version)
    current = fs.current_version(cap)
    assert fs.read_page(current, PagePath.of(0)) == b"A"
    assert fs.read_page(current, PagePath.of(3)) == b"B"
