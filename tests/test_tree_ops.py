"""Structural tree operations: insert, remove, holes, split, move."""

import pytest

from repro.errors import BadPathName, HoleReference
from repro.core.pathname import PagePath

ROOT = PagePath.ROOT


@pytest.fixture
def file_with_children(fs):
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    for i in range(4):
        fs.append_page(handle.version, ROOT, b"c%d" % i)
    fs.commit(handle.version)
    return cap


def test_insert_shifts_siblings(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    path = fs.insert_page(handle.version, ROOT, 1, b"inserted")
    assert path == PagePath.of(1)
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    assert fs.read_page(current, PagePath.of(1)) == b"inserted"
    assert fs.read_page(current, PagePath.of(2)) == b"c1"
    assert fs.read_page(current, PagePath.of(4)) == b"c3"


def test_insert_beyond_table_rejected(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    with pytest.raises(BadPathName):
        fs.insert_page(handle.version, ROOT, 9, b"x")
    fs.abort(handle.version)


def test_append_returns_next_index(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    path = fs.append_page(handle.version, ROOT, b"tail")
    assert path == PagePath.of(4)
    fs.abort(handle.version)


def test_remove_shifts_left(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    fs.remove_page(handle.version, PagePath.of(1))
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    assert fs.page_structure(current, ROOT) == [1, 1, 1]
    assert fs.read_page(current, PagePath.of(1)) == b"c2"


def test_remove_root_rejected(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    with pytest.raises(BadPathName):
        fs.remove_page(handle.version, ROOT)
    fs.abort(handle.version)


def test_make_hole_preserves_sibling_paths(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    fs.make_hole(handle.version, PagePath.of(1))
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    assert fs.page_structure(current, ROOT) == [1, 0, 1, 1]
    assert fs.read_page(current, PagePath.of(2)) == b"c2"  # unshifted
    with pytest.raises(HoleReference):
        fs.read_page(current, PagePath.of(1))


def test_fill_hole(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    fs.make_hole(handle.version, PagePath.of(1))
    fs.fill_hole(handle.version, PagePath.of(1), b"refilled")
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    assert fs.read_page(current, PagePath.of(1)) == b"refilled"


def test_fill_nonhole_rejected(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    with pytest.raises(BadPathName):
        fs.fill_hole(handle.version, PagePath.of(1), b"x")
    fs.abort(handle.version)


def test_remove_hole_shifts(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    fs.make_hole(handle.version, PagePath.of(1))
    fs.remove_hole(handle.version, PagePath.of(1))
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    assert fs.page_structure(current, ROOT) == [1, 1, 1]
    assert fs.read_page(current, PagePath.of(1)) == b"c2"


def test_remove_hole_on_page_rejected(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    with pytest.raises(BadPathName):
        fs.remove_hole(handle.version, PagePath.of(1))
    fs.abort(handle.version)


def test_split_page(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    sibling = fs.split_page(handle.version, PagePath.of(1), at=1)
    assert sibling == PagePath.of(2)
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    assert fs.read_page(current, PagePath.of(1)) == b"c"
    assert fs.read_page(current, PagePath.of(2)) == b"1"
    assert fs.read_page(current, PagePath.of(3)) == b"c2"


def test_split_offset_validated(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    with pytest.raises(BadPathName):
        fs.split_page(handle.version, PagePath.of(1), at=99)
    fs.abort(handle.version)


def test_move_subtree_between_parents(fs):
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    left = fs.append_page(handle.version, ROOT, b"left")
    right = fs.append_page(handle.version, ROOT, b"right")
    payload = fs.append_page(handle.version, left, b"cargo")
    deep = fs.append_page(handle.version, payload, b"nested")
    fs.commit(handle.version)
    handle = fs.create_version(cap)
    new_path = fs.move_subtree(handle.version, payload, right, 0)
    fs.commit(handle.version)
    current = fs.current_version(cap)
    assert new_path == PagePath.of(1, 0)
    assert fs.read_page(current, PagePath.of(1, 0)) == b"cargo"
    assert fs.read_page(current, PagePath.of(1, 0, 0)) == b"nested"
    assert fs.page_structure(current, left) == []


def test_move_within_same_parent(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    fs.move_subtree(handle.version, PagePath.of(3), ROOT, 0)
    fs.commit(handle.version)
    current = fs.current_version(file_with_children)
    values = [fs.read_page(current, PagePath.of(i)) for i in range(4)]
    assert values == [b"c3", b"c0", b"c1", b"c2"]


def test_move_into_own_subtree_rejected(fs):
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    a = fs.append_page(handle.version, ROOT, b"a")
    b = fs.append_page(handle.version, a, b"b")
    with pytest.raises(BadPathName):
        fs.move_subtree(handle.version, a, b, 0)
    fs.abort(handle.version)


def test_move_root_rejected(fs, file_with_children):
    handle = fs.create_version(file_with_children)
    with pytest.raises(BadPathName):
        fs.move_subtree(handle.version, ROOT, PagePath.of(0), 0)
    fs.abort(handle.version)


def test_destination_index_shift_after_removal(fs):
    """Moving from an earlier sibling of the destination's ancestor: the
    destination path is adjusted for the table shift."""
    cap = fs.create_file(b"root")
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"x0")  # 0 (source)
    dest = fs.append_page(handle.version, ROOT, b"x1")  # 1 -> becomes 0
    fs.commit(handle.version)
    handle = fs.create_version(cap)
    new_path = fs.move_subtree(handle.version, PagePath.of(0), dest, 0)
    fs.commit(handle.version)
    current = fs.current_version(cap)
    assert new_path == PagePath.of(0, 0)
    assert fs.read_page(current, PagePath.of(0)) == b"x1"
    assert fs.read_page(current, PagePath.of(0, 0)) == b"x0"
