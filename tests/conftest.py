"""Shared fixtures: clusters, clients, deterministic RNGs."""

from __future__ import annotations

import os
import random

import pytest

from repro.client.api import FileClient
from repro.testbed import Cluster, build_cluster


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xA0EBA)


@pytest.fixture(params=["sim", "disk"])
def disk_backend(request, tmp_path):
    """Block-medium parametrisation: tests taking this fixture run once on
    simulated memory and once on the durable file-backed disk (a tmpdir).

    Returns a zero-argument callable producing ``StablePair`` keyword
    arguments; each call hands out a fresh data directory so tests that
    build several pairs don't collide.  ``disk_backend.backend`` names the
    active medium for tests that need to branch.
    """
    import itertools

    counter = itertools.count(1)

    def kwargs() -> dict:
        if request.param == "sim":
            return {"backend": "sim", "data_dir": None}
        return {
            "backend": "disk",
            "data_dir": str(tmp_path / f"disk{next(counter)}"),
        }

    kwargs.backend = request.param
    return kwargs


@pytest.fixture
def soak_seed() -> int:
    """Seed for the soak/exploration tests.

    Defaults to 1; set ``REPRO_SOAK_SEED=N`` to re-run the deterministic
    suite under a different interleaving (e.g. to bisect a CI failure:
    the failing run prints the exact seed to replay).
    """
    return int(os.environ.get("REPRO_SOAK_SEED", "1"))


@pytest.fixture
def cluster() -> Cluster:
    """A single-server deployment."""
    return build_cluster(servers=1, seed=7)


@pytest.fixture
def cluster2() -> Cluster:
    """A two-server (replicated) deployment."""
    return build_cluster(servers=2, seed=7)


@pytest.fixture
def fs(cluster: Cluster):
    return cluster.fs()


@pytest.fixture
def client(cluster: Cluster) -> FileClient:
    return FileClient(cluster.network, "host0", cluster.service_port)
