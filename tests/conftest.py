"""Shared fixtures: clusters, clients, deterministic RNGs."""

from __future__ import annotations

import random

import pytest

from repro.client.api import FileClient
from repro.testbed import Cluster, build_cluster


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xA0EBA)


@pytest.fixture
def cluster() -> Cluster:
    """A single-server deployment."""
    return build_cluster(servers=1, seed=7)


@pytest.fixture
def cluster2() -> Cluster:
    """A two-server (replicated) deployment."""
    return build_cluster(servers=2, seed=7)


@pytest.fixture
def fs(cluster: Cluster):
    return cluster.fs()


@pytest.fixture
def client(cluster: Cluster) -> FileClient:
    return FileClient(cluster.network, "host0", cluster.service_port)
