"""The whole file service over real localhost TCP sockets.

The acceptance bar for the wire transport: the existing client API —
FileClient, ClientUpdate, caching, buffering, group commit — commits and
reads over TCP with zero changes to core/service.py OCC logic, and
killing one stable-pair daemon mid-workload fails over to the companion
with a serializable recorded history.
"""

from __future__ import annotations

import pytest

from repro.core.pathname import PagePath
from repro.errors import CommitConflict
from repro.net import build_tcp_cluster, connect
from repro.obs import Recorder
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT


# The whole acceptance bar applies to both daemon implementations: the
# threaded thread-per-connection transport and the asyncio event-loop
# transport serve the same service over the same wire protocol.
@pytest.fixture(params=[False, True], ids=["threaded", "async"])
def async_mode(request):
    return request.param


@pytest.fixture
def tcp_cluster(async_mode):
    cluster = build_tcp_cluster(servers=2, seed=7, async_mode=async_mode)
    yield cluster
    cluster.stop()


def test_create_commit_read_over_tcp(tcp_cluster):
    client = tcp_cluster.client("host")
    cap = client.create_file(b"first bytes over the real wire")
    assert client.read(cap) == b"first bytes over the real wire"
    client.transact(cap, lambda u: u.write(ROOT, b"second version"))
    assert client.read(cap) == b"second version"
    assert len(client.history(cap)) == 2


def test_page_tree_operations_over_tcp(tcp_cluster):
    client = tcp_cluster.client("host")
    cap = client.create_file(b"root")
    update = client.begin(cap)
    child_a = update.append_page(ROOT, b"page a")
    child_b = update.append_page(ROOT, b"page b")
    update.commit()
    assert client.read(cap, child_a) == b"page a"
    assert client.read(cap, child_b) == b"page b"
    update = client.begin(cap)
    update.remove_page(child_b)
    update.commit()
    assert client.read(cap, PagePath.of(0)) == b"page a"


def test_optimistic_conflict_and_redo_over_tcp(tcp_cluster):
    client = tcp_cluster.client("host")
    counter = client.create_file(b"0")

    def increment(update):
        update.write(ROOT, b"%d" % (int(update.read(ROOT)) + 1))

    first = client.begin(counter)
    second = client.begin(counter)
    first.read(ROOT)
    second.read(ROOT)
    first.write(ROOT, b"1")
    second.write(ROOT, b"1")
    first.commit()
    with pytest.raises(CommitConflict):
        second.commit()
    # The redo loop settles it.
    client.transact(counter, increment)
    assert client.read(counter) == b"2"


def test_client_cache_and_buffered_writes_over_tcp(tcp_cluster):
    client = tcp_cluster.client("host", buffer_writes=True)
    cap = client.create_file(b"cached")
    assert client.read(cap) == b"cached"
    hits_before = client.stats.cache_hits
    assert client.read(cap) == b"cached"
    assert client.stats.cache_hits == hits_before + 1
    update = client.begin(cap)
    update.write(ROOT, b"buffered then shipped")
    update.commit()
    assert client.read(cap) == b"buffered then shipped"


def test_group_commit_over_tcp(tcp_cluster):
    client = tcp_cluster.client("host", use_cache=False)
    cap = client.create_file(b"base")
    setup = client.begin(cap)
    paths = [setup.append_page(ROOT, b"init") for _ in range(4)]
    setup.commit()
    client.prefer_server = client.ping()
    updates = []
    for i, path in enumerate(paths):
        update = client.begin(cap)
        update.write(path, b"grouped %d" % i)
        updates.append(update)
    outcomes = client.commit_group(updates)
    assert all(v == "committed" for v in outcomes.values())
    for i, path in enumerate(paths):
        assert client.read(cap, path) == b"grouped %d" % i


def test_file_server_replica_failover_over_tcp(tcp_cluster):
    client = tcp_cluster.client("host")
    cap = client.create_file(b"replicated")
    tcp_cluster.fs(0).crash()
    client.transact(cap, lambda u: u.write(ROOT, b"served by the replica"))
    assert client.read(cap) == b"served by the replica"
    tcp_cluster.fs(0).restart()


def test_kill_stable_pair_daemon_mid_workload_with_history_check(async_mode):
    """The acceptance criterion: a real daemon dies mid-workload, the
    workload completes through the companion, and the recorded history
    passes the serializability checker — on both daemon implementations."""
    recorder = Recorder()
    history = HistoryRecorder()
    cluster = build_tcp_cluster(
        servers=2, seed=13, recorder=recorder, history=history,
        async_mode=async_mode,
    )
    try:
        client = cluster.client("host", history=history)
        caps = [client.create_file(b"file %d" % i) for i in range(3)]
        for round_ in range(2):
            for i, cap in enumerate(caps):
                client.transact(
                    cap,
                    lambda u, r=round_, i=i: u.write(ROOT, b"r%d f%d" % (r, i)),
                )
        cluster.pair.a.crash()  # a real socket teardown, not a sim flag
        for i, cap in enumerate(caps):
            client.transact(
                cap, lambda u, i=i: u.write(ROOT, b"post-crash f%d" % i)
            )
        for i, cap in enumerate(caps):
            assert client.read(cap) == b"post-crash f%d" % i
        cluster.pair.a.restart()
        cluster.pair.a.resync()
        assert cluster.pair.consistent()
        result = check_history(history)
        assert result.ok, result.violations()
        assert recorder.metrics.counters["net.tcp.failovers"].value > 0
    finally:
        cluster.stop()


def test_sharded_topology_over_tcp(async_mode):
    cluster = build_tcp_cluster(servers=1, shards=3, seed=11, async_mode=async_mode)
    try:
        client = cluster.client("host")
        caps = [client.create_file(b"shard me %d" % i) for i in range(6)]
        for i, cap in enumerate(caps):
            client.transact(cap, lambda u, i=i: u.write(ROOT, b"data %d" % i))
        for i, cap in enumerate(caps):
            assert client.read(cap) == b"data %d" % i
        counts = cluster.shards.allocation_counts()
        assert sum(counts) >= 6
        assert all(count > 0 for count in counts)
    finally:
        cluster.stop()


def test_connect_spec_round_trip(async_mode):
    """A second network object built purely from the spec string (the
    cross-process path) reaches the same deployment — including one
    hosted by the async daemons (the wire protocol is identical)."""
    cluster = build_tcp_cluster(servers=2, seed=7, async_mode=async_mode)
    try:
        from repro.client.api import FileClient

        network, service_port = connect(cluster.spec())
        assert service_port == cluster.service_port
        remote = FileClient(network, "remote", service_port)
        cap = remote.create_file(b"via spec")
        remote.transact(cap, lambda u: u.write(ROOT, b"spec commit"))
        assert remote.read(cap) == b"spec commit"
        # The local cluster's own client sees the remote client's commit.
        local = cluster.client("local")
        assert local.read(cap) == b"spec commit"
        network._drop_pool()
    finally:
        cluster.stop()


def test_tcp_counters_flow_through_the_obs_layer(async_mode):
    recorder = Recorder()
    cluster = build_tcp_cluster(
        servers=1, seed=7, recorder=recorder, async_mode=async_mode
    )
    try:
        client = cluster.client("host")
        cap = client.create_file(b"counted")
        client.transact(cap, lambda u: u.write(ROOT, b"counted commit"))
        counters = recorder.metrics.counters
        assert counters["net.tcp.connections"].value >= 1
        assert counters["net.tcp.requests"].value > 0
        assert counters["net.tcp.bytes_in"].value > 0
        assert counters["net.tcp.bytes_out"].value > 0
        # Client- and server-side request counts agree: every request the
        # transport sent was served (no drops, no silent retries).
        assert (
            counters["net.tcp.requests"].value
            == counters["net.tcp.requests_served"].value
        )
    finally:
        cluster.stop()


def test_service_state_is_shared_across_wire_flavours(async_mode):
    """The OCC logic is byte-for-byte the sim's: the same FileService
    object hosted behind TCP can be driven directly (in process) and over
    the wire, and both views agree."""
    cluster = build_tcp_cluster(servers=1, seed=7, async_mode=async_mode)
    try:
        client = cluster.client("host")
        cap = client.create_file(b"dual view")
        fs = cluster.fs(0)
        # Direct in-process read of the same server object.
        assert fs.read_page(fs.current_version(cap), ROOT) == b"dual view"
        client.transact(cap, lambda u: u.write(ROOT, b"over the wire"))
        assert fs.read_page(fs.current_version(cap), ROOT) == b"over the wire"
    finally:
        cluster.stop()
