"""Edge cases across the service surface: limits, deep trees, RPC forms,
rights restriction end-to-end, file deletion."""

import pytest

from repro.capability import RIGHT_READ, RIGHT_CREATE, RIGHT_COMMIT, RIGHT_WRITE
from repro.errors import (
    InsufficientRights,
    PageTooLarge,
    ReferenceTableFull,
)
from repro.core.page import PAGE_BODY_SIZE, REF_SIZE
from repro.core.pathname import PagePath
from repro.client.api import FileClient

ROOT = PagePath.ROOT


def test_page_at_exact_size_limit(fs):
    cap = fs.create_file(b"")
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"x" * PAGE_BODY_SIZE)
    fs.commit(handle.version)
    data = fs.read_page(fs.current_version(cap), ROOT)
    assert len(data) == PAGE_BODY_SIZE


def test_data_and_refs_compete_for_space(fs):
    cap = fs.create_file(b"")
    handle = fs.create_version(cap)
    fs.append_page(handle.version, ROOT, b"child")
    limit = PAGE_BODY_SIZE - REF_SIZE  # one reference's worth is taken
    fs.write_page(handle.version, ROOT, b"x" * limit)
    with pytest.raises(PageTooLarge):
        fs.write_page(handle.version, ROOT, b"x" * (limit + 1))
    fs.abort(handle.version)


def test_reference_table_capacity(fs):
    cap = fs.create_file(b"")
    handle = fs.create_version(cap)
    # Fill the root with data leaving room for exactly 3 references.
    fs.write_page(handle.version, ROOT, b"d" * (PAGE_BODY_SIZE - 3 * REF_SIZE))
    for _ in range(3):
        fs.append_page(handle.version, ROOT, b"c")
    with pytest.raises(ReferenceTableFull):
        fs.append_page(handle.version, ROOT, b"one too many")
    fs.abort(handle.version)


def test_deep_tree(fs):
    cap = fs.create_file(b"level0")
    handle = fs.create_version(cap)
    path = ROOT
    for level in range(1, 12):
        path = fs.append_page(handle.version, path, b"level%d" % level)
    fs.commit(handle.version)
    current = fs.current_version(cap)
    assert path.depth == 11
    assert fs.read_page(current, path) == b"level11"
    # An update deep in the tree shadows the whole spine but nothing else.
    handle2 = fs.create_version(cap)
    fs.write_page(handle2.version, path, b"rewritten")
    fs.commit(handle2.version)
    assert fs.read_page(fs.current_version(cap), path) == b"rewritten"


def test_restricted_capability_through_rpc(cluster):
    """A read-only capability handed to another client really is
    read-only, across the network."""
    owner = FileClient(cluster.network, "owner", cluster.service_port)
    reader = FileClient(cluster.network, "reader", cluster.service_port)
    cap = owner.create_file(b"secret")
    read_only = cluster.issuer.restrict(cap, RIGHT_READ)
    assert reader.read(read_only) == b"secret"
    with pytest.raises(InsufficientRights):
        reader.begin(read_only)


def test_commit_right_separate_from_write(cluster, fs):
    cap = fs.create_file(b"x")
    no_commit = cluster.issuer.restrict(
        cap, RIGHT_READ | RIGHT_CREATE | RIGHT_WRITE
    )
    handle = fs.create_version(no_commit)
    fs.write_page(handle.version, ROOT, b"y")
    with pytest.raises(InsufficientRights):
        fs.commit(cluster.issuer.restrict(handle.version, RIGHT_WRITE))
    fs.commit(handle.version)  # the full version cap carries COMMIT


def test_rpc_tree_commands_roundtrip(cluster):
    """The string-path RPC forms of the tree commands."""
    client = FileClient(cluster.network, "host", cluster.service_port)
    cap = client.create_file(b"root")
    update = client.begin(cap)
    raw = client._call
    a = raw("append_page", version_cap=update.version, parent_path="", data=b"a")
    assert a == "0"
    raw("insert_page", version_cap=update.version, parent_path="", index=0, data=b"z")
    assert raw("page_structure", version_cap=update.version, path="") == [1, 1]
    raw("make_hole", version_cap=update.version, path="0")
    raw("fill_hole", version_cap=update.version, path="0", data=b"z2")
    sibling = raw("split_page", version_cap=update.version, path="0", at=1)
    assert sibling == "1"
    moved = raw(
        "move_subtree", version_cap=update.version, src="2", dst_parent="", dst_index=0
    )
    assert moved == "0"
    raw("remove_page", version_cap=update.version, path="0")
    update.commit()
    tree = raw("family_tree", file_cap=cap)
    assert len(tree["committed"]) == 2


def test_many_independent_files(fs):
    caps = [fs.create_file(b"f%d" % i) for i in range(25)]
    for i, cap in enumerate(caps):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"updated%d" % i)
        fs.commit(handle.version)
    for i, cap in enumerate(caps):
        assert fs.read_page(fs.current_version(cap), ROOT) == b"updated%d" % i


def test_delete_file_blocks_reclaimed(cluster, fs):
    cap = fs.create_file(b"doomed")
    handle = fs.create_version(cap)
    for i in range(4):
        fs.append_page(handle.version, ROOT, b"p%d" % i)
    fs.commit(handle.version)
    allocated_before = len(fs.store.blocks.recover())
    fs.delete_file(cap)
    cluster.gc().collect()
    assert len(fs.store.blocks.recover()) < allocated_before


def test_interleaved_reads_and_writes_same_update(fs):
    cap = fs.create_file(b"v0")
    handle = fs.create_version(cap)
    child = fs.append_page(handle.version, ROOT, b"c0")
    assert fs.read_page(handle.version, child) == b"c0"
    fs.write_page(handle.version, child, b"c1")
    assert fs.read_page(handle.version, child) == b"c1"
    fs.write_page(handle.version, child, b"c2")
    fs.commit(handle.version)
    assert fs.read_page(fs.current_version(cap), child) == b"c2"


def test_empty_write_and_empty_file(fs):
    cap = fs.create_file(b"")
    assert fs.read_page(fs.current_version(cap), ROOT) == b""
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"")
    fs.commit(handle.version)
    assert fs.read_page(fs.current_version(cap), ROOT) == b""


def test_version_caps_of_old_versions_survive_many_commits(fs):
    cap = fs.create_file(b"r0")
    old_caps = [fs.current_version(cap)]
    for n in range(1, 8):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"r%d" % n)
        fs.commit(handle.version)
        old_caps.append(fs.current_version(cap))
    for n, version in enumerate(old_caps):
        assert fs.read_page(version, ROOT) == b"r%d" % n
