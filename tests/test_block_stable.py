"""Companion-pair stable storage (§4): replication, collisions, recovery."""

import pytest

from repro.errors import CompanionConflict, ServerCrashed, ServerUnreachable
from repro.capability import new_port
from repro.block.stable import StableClient, StablePair
from repro.obs import Recorder
from repro.sim.faults import CrashSchedule
from repro.sim.network import Network


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def pair(net, disk_backend):
    # Runs the whole suite twice: simulated memory AND the durable
    # file-backed disk, so every §4 invariant holds on real files too.
    return StablePair(net, 0x500, capacity=64, block_size=256, **disk_backend())


@pytest.fixture
def client(net, pair):
    return StableClient(net, "cli", 0x500, account=1)


def test_write_lands_on_both_disks(pair, client):
    block = client.allocate_write(b"twice")
    assert pair.disk_a.read(block) == pair.disk_b.read(block)
    assert pair.consistent()


def test_companion_first_ordering(pair):
    """The companion's disk is written before the receiving server's."""
    op = pair.a.begin_allocate_write(1, b"data")
    # After the begin (companion step), B has the block, A does not yet.
    assert pair.disk_b.holds(op.block_no)
    assert not pair.disk_a.holds(op.block_no)
    pair.a.finish_op(op)
    assert pair.disk_a.holds(op.block_no)


def test_read_served_locally(pair, client, net):
    block = client.allocate_write(b"x")
    reads_b = pair.disk_b.stats.reads
    client.read(block)
    assert pair.disk_b.stats.reads == reads_b  # companion not consulted


def test_corrupted_read_repaired_from_companion(pair, client):
    block = client.allocate_write(b"precious")
    pair.disk_a.corrupt(block)
    assert client.read(block) == b"precious"
    # Local copy was repaired in place.
    assert pair.disk_a.read(block) == b"precious"


def test_allocate_collision_detected(pair):
    """Both halves pick the same number simultaneously; the op whose
    companion step arrives second is refused before any damage."""
    op_a = pair.a._new_op("alloc", 1, pair.a._choose_block(), b"A")
    op_b = pair.b._new_op("alloc", 1, pair.b._choose_block(), b"B")
    assert op_a.block_no == op_b.block_no  # the accidental collision
    # A's companion step reaches B, which has its own pending op: refused.
    with pytest.raises(CompanionConflict):
        pair.a._companion_step(op_a)
    # B's operation proceeds unharmed.
    pair.b._companion_step(op_b)
    pair.b.finish_op(op_b)
    assert pair.consistent()
    # A retries and gets a different block.
    retry = pair.a.begin_allocate_write(1, b"A")
    assert retry.block_no != op_b.block_no
    pair.a.finish_op(retry)
    assert pair.consistent()


def test_write_collision_detected(pair, client, net):
    block = client.allocate_write(b"base")
    op_a = pair.a.begin_write(1, block, b"via A")
    # A second client writes the same block through B while A's op is in
    # flight: B's companion step reaches A, which has a pending marker.
    with pytest.raises(CompanionConflict):
        pair.b.cmd_write(1, block, b"via B")
    pair.a.finish_op(op_a)
    assert pair.disk_a.read(block) == pair.disk_b.read(block) == b"via A"
    # After completion the other write goes through.
    pair.b.cmd_write(1, block, b"via B")
    assert pair.disk_a.read(block) == pair.disk_b.read(block) == b"via B"


def test_same_server_overlap_is_conflict(pair, client):
    block = client.allocate_write(b"base")
    op = pair.a.begin_write(1, block, b"first")
    with pytest.raises(CompanionConflict):
        pair.a.begin_write(1, block, b"second")
    pair.a.finish_op(op)


def test_client_fails_over_to_companion(pair, client):
    block = client.allocate_write(b"durable")
    pair.a.crash()
    assert client.read(block) == b"durable"


def test_writes_while_companion_down_use_intentions(pair, client):
    block = client.allocate_write(b"v1")
    pair.b.crash()
    client.write(block, b"v2")  # served by A alone, intention recorded
    fresh = client.allocate_write(b"new")  # also A alone
    assert pair.disk_a.read(block) == b"v2"
    assert not pair.disk_b.holds(fresh)
    # B restarts: refuses clients until resync, then catches up.
    pair.b.restart()
    with pytest.raises(ServerCrashed):
        pair.b.cmd_read(1, block)
    applied = pair.b.resync()
    assert applied >= 2
    assert pair.disk_b.read(block) == b"v2"
    assert pair.disk_b.read(fresh) == b"new"
    assert pair.consistent()


def test_crash_during_resync_loses_nothing(pair, client):
    """The two-phase resync: a crash after fetching but before finishing
    the apply leaves the intentions at the companion; the next resync
    re-applies them (idempotently)."""
    block = client.allocate_write(b"v1")
    pair.b.crash()
    client.write(block, b"v2")
    client.write(block, b"v3")
    pair.b.restart()
    # Simulate a crash mid-resync: fetch (non-destructively), apply only
    # the first intention, then die before acknowledging.
    intentions = pair.b._call_companion("fetch_intentions")
    assert len(intentions) == 2
    first = intentions[0]
    pair.b.local.write(first.account, first.block_no, first.data)
    pair.b.crash()
    # The intentions are all still at A.
    assert len(pair.a._intentions) == 2
    # A full restart + resync completes the job.
    pair.b.restart()
    applied = pair.b.resync()
    assert applied == 2
    assert pair.disk_b.read(block) == b"v3"
    assert pair.consistent()
    # And the acknowledged list is gone.
    assert pair.a._intentions == []


def test_free_replicates(pair, client):
    block = client.allocate_write(b"bye")
    client.free(block)
    assert not pair.disk_a.holds(block)
    assert not pair.disk_b.holds(block)


def test_free_while_companion_down(pair, client):
    block = client.allocate_write(b"x")
    pair.b.crash()
    client.free(block)
    pair.b.restart()
    pair.b.resync()
    assert not pair.disk_b.holds(block)


def test_test_and_set_through_pair(pair, client):
    block = client.allocate_write(b"ref:" + b"\x00" * 4)
    result = client.test_and_set(block, 4, b"\x00" * 4, b"\x00\x00\x00\x07")
    assert result.success
    assert pair.disk_a.read(block) == pair.disk_b.read(block)
    # Second CAS with stale expectation fails and reports the winner.
    result2 = client.test_and_set(block, 4, b"\x00" * 4, b"\x00\x00\x00\x09")
    assert not result2.success
    assert result2.current == b"\x00\x00\x00\x07"


def test_recover_lists_blocks(pair, client):
    blocks = {client.allocate_write(b"%d" % i) for i in range(4)}
    assert set(client.recover()) == blocks


def test_lock_facility_via_client(pair, client):
    block = client.allocate_write(b"x")
    assert client.lock(block, locker=7)
    assert not client.lock(block, locker=8)
    client.unlock(block, locker=7)
    assert client.lock(block, locker=8)


def test_reserve_then_write(pair, net):
    """Deferred-write allocation: number reserved on both halves first."""
    client = StableClient(net, "cli", 0x500, account=1)
    block = client.allocate()
    assert pair.a.local.owner_of(block) == 1
    assert pair.b.local.owner_of(block) == 1
    client.write(block, b"later")
    assert pair.disk_a.read(block) == b"later"
    assert pair.consistent()


def test_crashed_half_rejects_companion_traffic(pair):
    pair.b.crash()
    with pytest.raises((ServerCrashed, ServerUnreachable)):
        pair.b.cmd_companion_write("blockA", 1, 5, b"x")


# -- the observability layer watching the pair -------------------------------


@pytest.fixture
def recorder():
    return Recorder()


@pytest.fixture
def obs_pair(recorder):
    net = Network(recorder=recorder)
    recorder.bind_clock(net.clock)
    return StablePair(net, 0x500, capacity=64, block_size=256, recorder=recorder)


def test_span_shows_companion_first_write_order(obs_pair, recorder):
    """The §4 ordering — "writes are always carried out on the companion
    disk first" — read straight off the span's event stream."""
    with recorder.span("stable.write") as span:
        block = obs_pair.a.cmd_allocate_write(1, b"replicated")
    writes = span.events_named("disk.write")
    assert [event.tags["disk"] for event in writes] == ["blockB", "blockA"]
    assert writes[0].tick < writes[1].tick
    assert writes[0].tags["block"] == writes[1].tags["block"] == block
    assert span.counters["stable.companion_rpc"] == 1


def test_span_shows_only_companion_write_when_origin_crashes(obs_pair, recorder):
    """Inject a crash between the companion write and the local write: the
    span records exactly one disk write — the companion's — and the data
    is already durable there (why companion-first is crash-safe)."""
    schedule = CrashSchedule(after_ops=1)
    with recorder.span("stable.write") as span:
        op = obs_pair.a.begin_allocate_write(1, b"half-written")
        assert schedule.tick()  # the companion step was operation one
        obs_pair.a.crash()  # ...and the origin dies before its own write
    writes = span.events_named("disk.write")
    assert [event.tags["disk"] for event in writes] == ["blockB"]
    assert obs_pair.disk_b.read(op.block_no) == b"half-written"
    assert not obs_pair.disk_a.holds(op.block_no)
    # The schedule keeps counting past the crash (metrics must not freeze).
    assert not schedule.tick()
    assert schedule.count == 2 and schedule.fired


def test_resync_metrics_count_applied_intentions(obs_pair, recorder):
    block = obs_pair.a.cmd_allocate_write(1, b"v1")
    obs_pair.b.crash()
    obs_pair.a.cmd_write(1, block, b"v2")
    intents = recorder.metrics.counter("stable.intention").value
    assert intents == 1
    obs_pair.b.restart()
    obs_pair.b.resync()
    assert recorder.metrics.counter("stable.resync_applied").value == 1
    assert obs_pair.consistent()


# -- regressions: checked reads, replicated locks, retransmit accounting -----


def test_tas_repairs_corrupted_local_copy(pair, client):
    """The compare of a test-and-set must run against verified data: with
    the local copy corrupted, the TAS still succeeds via the companion's
    copy and repairs the local block in place."""
    block = client.allocate_write(b"R" * 8)
    pair.disk_a.corrupt(block)
    result = client.test_and_set(block, 0, b"R" * 8, b"S" * 8)
    assert result.success
    assert pair.disk_a.read(block) == b"S" * 8
    assert pair.disk_b.read(block) == b"S" * 8
    assert pair.consistent()


def test_tas_on_corrupt_block_does_not_false_fail(pair, client):
    """A corrupted local block used to feed garbage into the compare,
    falsely failing (or passing) the swap; the checked read prevents it."""
    block = client.allocate_write(b"expected")
    pair.disk_a.corrupt(block)
    result = client.test_and_set(block, 0, b"WRONG!!!", b"ignored!")
    assert not result.success
    assert result.current == b"expected"  # the true bytes, not garbage


def test_lock_state_survives_half_crash(pair, client):
    """Locks replicate companion-first, so a client failing over to the
    surviving half still sees the lock held."""
    block = client.allocate_write(b"locked")
    assert client.lock(block, locker=7)
    pair.a.crash()  # the half that served the lock dies
    assert not client.lock(block, locker=8)  # survivor still refuses
    client.unlock(block, locker=7)  # the holder releases via the survivor
    assert client.lock(block, locker=8)


def test_unlock_releases_both_halves(pair, client):
    block = client.allocate_write(b"locked")
    assert client.lock(block, locker=7)
    assert pair.a.local.lock_holder(block) == 7
    assert pair.b.local.lock_holder(block) == 7
    client.unlock(block, locker=7)
    assert pair.a.local.lock_holder(block) is None
    assert pair.b.local.lock_holder(block) is None


def test_lock_refused_by_companion_leaves_no_local_state(pair, client):
    """If the companion refuses a lock, the origin must not grant it
    locally — divergent lock tables are exactly the bug being fixed."""
    block = client.allocate_write(b"contended")
    assert pair.b.cmd_lock(block, locker=1)  # holder came in through B
    assert not pair.a.cmd_lock(block, locker=2)
    assert pair.a.local.lock_holder(block) != 2


def test_companion_retransmissions_counted_distinctly():
    """A dropped companion message is retransmitted; each transmission is
    a ``stable.companion_rpc`` event and the extras are additionally
    counted as ``stable.companion_retransmit``."""
    from repro.sim.faults import DropPolicy

    recorder = Recorder()
    net = Network(recorder=recorder)
    recorder.bind_clock(net.clock)
    pair = StablePair(net, 0x500, capacity=64, block_size=256)
    client = StableClient(net, "cli", 0x500, account=1)
    block = client.allocate_write(b"v1")
    base_rpc = recorder.metrics.counter("stable.companion_rpc").value
    # Drop exactly the companion-write message of the next write (send 1
    # is client->A, send 2 is A->B).
    net.drop_policy = DropPolicy(drop_nth=frozenset({2}))
    with recorder.span("stable.write") as span:
        client.write(block, b"v2")
    assert recorder.metrics.counter("stable.companion_rpc").value - base_rpc == 2
    assert recorder.metrics.counter("stable.companion_retransmit").value == 1
    assert span.counters["stable.companion_rpc"] == 2
    assert span.counters["stable.companion_retransmit"] == 1
    assert pair.disk_b.read(block) == b"v2"
    assert pair.consistent()


def test_allocation_probe_cost_stays_linear(net):
    """The rotating cursor keeps allocation O(1) amortised: 500 allocations
    probe O(n) blocks in total, not the O(n^2) a rescan-from-1 policy
    costs (~125k probes here)."""
    pair = StablePair(net, 0x510, capacity=2048, block_size=64)
    client = StableClient(net, "cli", 0x510, account=1)
    probed = {"total": 0}
    original = pair.disk_a.first_free

    def probing(start=1):
        result = original(start)
        probed["total"] += result - start + 1
        return result

    pair.disk_a.first_free = probing
    n = 500
    for _ in range(n):
        client.allocate_write(b"x")
    assert probed["total"] <= 4 * n


def test_allocation_cursor_wraps_to_find_free_space(net):
    """DiskFull at the cursor must not be final while free blocks remain
    below it: the search wraps to block 1 once."""
    from repro.errors import DiskFull

    pair = StablePair(net, 0x511, capacity=8, block_size=64)
    client = StableClient(net, "cli", 0x511, account=1)
    blocks = [client.allocate_write(b"fill") for _ in range(8)]
    with pytest.raises(DiskFull):
        client.allocate_write(b"no room")
    # first_free only returns never-written numbers, so exhaustion is
    # permanent on this medium — but the wrap itself must happen: the
    # cursor sits past the end and a fresh DiskFull is raised only after
    # rescanning from 1.
    assert pair.a._alloc_cursor > 8
    assert len(blocks) == 8
