"""Concurrency barrage for the asyncio wire transport.

The tentpole claims, each under deliberate stress:

* ~200 simultaneous connections with mixed reads and commits in flight —
  every request gets exactly one reply, none dropped, busy-retries
  bounded (zero, with the default lock timeout);
* pipelined calls on one connection come back in FIFO order even when
  the daemon dispatches them to different executor pools;
* a daemon killed mid-pipeline poisons the in-flight calls with a
  connection error (never a wrong or silently missing reply) and the
  workload completes through the companion with a serializable history;
* a long-running commit holding the dispatch lock must not cause
  ``snapshot_read`` on the same port to answer busy/MessageDropped —
  the regression the lock-free read path exists to prevent.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.pathname import PagePath
from repro.errors import MessageDropped, ServerUnreachable
from repro.net import build_tcp_cluster, wire
from repro.net.aserver import AsyncNetServer, READ_ONLY_COMMANDS
from repro.net.server import command_handler
from repro.net.transport import PipelinedConnection
from repro.obs import Recorder
from repro.sim.rpc import _registry, failover_order
from repro.verify.history import HistoryRecorder, check_history

ROOT = PagePath.ROOT


def _service_address(cluster):
    """(node name, TCP address) of the first file-server daemon."""
    network = cluster.network
    node = failover_order(_registry(network)[cluster.service_port], None)[0]
    return node, network.address_of(node)


def _pipelined(address, dest, max_frame=wire.DEFAULT_MAX_FRAME):
    sock = socket.create_connection(address, timeout=30)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return PipelinedConnection(sock, dest, max_frame)


# -- ~200 simultaneous connections, mixed reads and commits -----------------


def test_connection_barrage_no_response_dropped():
    """200 pipelined read connections and 4 committer clients at once:
    every submitted request is answered exactly once, the client- and
    server-side request counts agree (nothing dropped), and no busy
    signal fires."""
    CONNECTIONS = 200
    READS_PER_CONNECTION = 5
    COMMITTERS = 4
    COMMITS_EACH = 3

    recorder = Recorder()
    cluster = build_tcp_cluster(
        servers=2, seed=77, async_mode=True, recorder=recorder
    )
    try:
        network = cluster.network
        seed_client = cluster.client("seed", use_cache=False)
        cap = seed_client.create_file(b"barrage")
        seed_client.transact(cap, lambda u: u.write(ROOT, b"barrage data"))
        node, address = _service_address(cluster)

        errors: list[BaseException] = []
        replies = [0] * CONNECTIONS

        def read_worker(index: int) -> None:
            try:
                conn = _pipelined(address, node)
                try:
                    ids = [
                        conn.submit(
                            f"conn{index}",
                            "snapshot_read",
                            {"file_cap": cap, "path": str(ROOT)},
                        )[0]
                        for _ in range(READS_PER_CONNECTION)
                    ]
                    for rid in ids:
                        frame_type, body = conn.result(rid)
                        assert frame_type == wire.FRAME_REPLY, wire.decode_error(
                            body
                        )
                        assert wire.decode_value(body) == b"barrage data"
                        replies[index] += 1
                finally:
                    conn.close()
            except BaseException as exc:  # surface, don't swallow
                errors.append(exc)

        def commit_worker(index: int) -> None:
            try:
                client = cluster.client(f"committer{index}", use_cache=False)
                mine = client.create_file(b"committer %d" % index)
                for round_ in range(COMMITS_EACH):
                    client.transact(
                        mine,
                        lambda u, r=round_: u.write(
                            ROOT, b"commit %d by %d" % (r, index)
                        ),
                    )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=read_worker, args=(i,))
            for i in range(CONNECTIONS)
        ] + [
            threading.Thread(target=commit_worker, args=(i,))
            for i in range(COMMITTERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[0]
        assert replies == [READS_PER_CONNECTION] * CONNECTIONS

        counters = recorder.metrics.counters
        busy = counters.get("net.tcp.busy")
        assert busy is None or busy.value == 0
        drops = counters.get("rpc.retries")
        assert drops is None or drops.value == 0
    finally:
        cluster.stop()


# -- per-connection FIFO across executor pools ------------------------------


class SplitPoolServer:
    """One command in the read pool, one in the write pool, with skewed
    runtimes — FIFO replies are only observable if the daemon's writer
    actually orders them."""

    def __init__(self):
        self.name = "split"

    def cmd_snapshot_read(self, value):  # read pool (lock-free)
        return ("read", value)

    def cmd_mutate(self, value):  # write pool (dispatch lock)
        time.sleep(0.01)
        return ("mutate", value)


def test_pipelined_replies_are_fifo_per_connection():
    assert "snapshot_read" in READ_ONLY_COMMANDS
    daemon = AsyncNetServer(
        "split", command_handler(SplitPoolServer(), 0x42)
    ).start()
    try:
        with socket.create_connection(daemon.address, timeout=10) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Interleave slow mutating calls with fast reads.  The reads
            # finish first in their pool, but replies must still come
            # back in submission order.
            expected = []
            for i in range(20):
                command = "mutate" if i % 3 == 0 else "snapshot_read"
                sock.sendall(
                    wire.encode_request(
                        "c", command, {"value": i}, request_id=i + 1
                    )
                )
                expected.append((i + 1, command.replace("snapshot_read", "read")))
            assembler = wire.FrameAssembler()
            got = []
            while len(got) < 20:
                chunk = sock.recv(1 << 16)
                assert chunk, "daemon hung up mid-pipeline"
                for frame_type, rid, body in assembler.feed(chunk):
                    assert frame_type == wire.FRAME_REPLY
                    kind, value = wire.decode_value(body)
                    got.append((rid, kind, value))
            assert [(rid, kind) for rid, kind, _ in got] == expected
            assert [value for _, _, value in got] == list(range(20))
    finally:
        daemon.stop()
        daemon.close_loop()


# -- kill the daemon mid-pipeline -------------------------------------------


def test_kill_async_daemon_mid_pipeline_fails_over_cleanly():
    """Crash the preferred file-server daemon while pipelined calls are
    in flight: the pending calls surface as connection errors (never a
    fabricated reply), and a normal client completes the workload through
    the replica with a serializable recorded history."""
    recorder = Recorder()
    history = HistoryRecorder()
    cluster = build_tcp_cluster(
        servers=2, seed=29, async_mode=True, recorder=recorder, history=history
    )
    try:
        client = cluster.client("host", history=history)
        caps = [client.create_file(b"file %d" % i) for i in range(3)]
        for i, cap in enumerate(caps):
            client.transact(cap, lambda u, i=i: u.write(ROOT, b"pre %d" % i))

        node, address = _service_address(cluster)
        conn = _pipelined(address, node)
        try:
            ids = [
                conn.submit(
                    "pipeliner",
                    "snapshot_read",
                    {"file_cap": caps[0], "path": str(ROOT)},
                )[0]
                for _ in range(32)
            ]
            cluster.fs(0).crash()  # abortive close under the pipeline
            outcomes = {"replied": 0, "errored": 0, "poisoned": 0}
            for rid in ids:
                try:
                    frame_type, body = conn.result(rid)
                    if frame_type == wire.FRAME_REPLY:
                        # Served before the crash landed: the payload
                        # must be the real data, never garbage.
                        assert wire.decode_value(body) == b"pre 0"
                        outcomes["replied"] += 1
                    else:
                        # Caught mid-crash: a typed error frame, still
                        # correlated to our request id.
                        assert frame_type == wire.FRAME_ERROR
                        assert isinstance(wire.decode_error(body), Exception)
                        outcomes["errored"] += 1
                except (ConnectionError, OSError, ServerUnreachable):
                    outcomes["poisoned"] += 1
            # Every in-flight call resolved one way or the other — a
            # real reply, a typed error, or a poisoned connection; none
            # vanished, and the crash was actually observed.
            assert sum(outcomes.values()) == 32
            assert outcomes["errored"] + outcomes["poisoned"] > 0
        finally:
            conn.close()

        # The ordinary client path fails over to the replica and the
        # history stays serializable.
        for i, cap in enumerate(caps):
            client.transact(cap, lambda u, i=i: u.write(ROOT, b"post %d" % i))
            assert client.read(cap) == b"post %d" % i
        assert recorder.metrics.counters["net.tcp.failovers"].value > 0
        result = check_history(history)
        assert result.ok, result.violations()
        cluster.fs(0).restart()
        client.transact(caps[0], lambda u: u.write(ROOT, b"after restart"))
        assert client.read(caps[0]) == b"after restart"
    finally:
        cluster.stop()


# -- long commit must not busy snapshot_read --------------------------------


class SlowCommitServer:
    """Daemon-level regression harness: a mutating command that holds the
    dispatch lock far longer than the lock timeout."""

    def __init__(self):
        self.name = "slowfs"
        self.commit_started = threading.Event()

    def cmd_commit_like(self):
        self.commit_started.set()
        time.sleep(0.6)
        return "committed"

    def cmd_snapshot_read(self):
        return "snapshot"


def test_snapshot_read_not_busied_by_long_commit_daemon_level():
    """With a 0.1s lock timeout and a 0.6s mutating call holding the
    lock, a snapshot read on the same port must answer — not busy.  (On
    the threaded daemon this exact sequence answers MessageDropped.)"""
    server = SlowCommitServer()
    daemon = AsyncNetServer(
        "slowfs", command_handler(server, 0x42), lock_timeout=0.1
    ).start()
    try:
        background = []

        def long_commit():
            with socket.create_connection(daemon.address, timeout=10) as sock:
                sock.sendall(
                    wire.encode_request("w", "commit_like", {}, request_id=1)
                )
                header = _read_exact(sock, wire.HEADER_SIZE)
                _, _, length = wire.decode_header(header)
                background.append(wire.decode_value(_read_exact(sock, length)))

        writer = threading.Thread(target=long_commit)
        writer.start()
        assert server.commit_started.wait(timeout=5)
        start = time.monotonic()
        with socket.create_connection(daemon.address, timeout=10) as sock:
            sock.sendall(
                wire.encode_request("r", "snapshot_read", {}, request_id=2)
            )
            header = _read_exact(sock, wire.HEADER_SIZE)
            frame_type, rid, length = wire.decode_header(header)
            body = _read_exact(sock, length)
        elapsed = time.monotonic() - start
        writer.join(timeout=5)
        assert frame_type == wire.FRAME_REPLY, wire.decode_error(body)
        assert wire.decode_value(body) == "snapshot"
        assert rid == 2
        # Answered while the commit still held the lock, and without
        # waiting out the lock timeout.
        assert elapsed < 0.5
        assert background == ["committed"]
    finally:
        daemon.stop()
        daemon.close_loop()


def test_snapshot_read_not_busied_by_commit_stream_service_level():
    """The same regression against the real file service: a stream of
    multi-page commits with a lock timeout far below the commit window —
    every concurrent snapshot read must succeed, zero busy signals."""
    recorder = Recorder()
    cluster = build_tcp_cluster(
        servers=2, seed=31, async_mode=True, recorder=recorder,
        lock_timeout=0.02,
    )
    try:
        committer = cluster.client("committer", use_cache=False)
        commit_cap = committer.create_file(b"committed file")
        reader = cluster.client("reader", use_cache=False)
        read_cap = reader.create_file(b"read file")
        reader.transact(read_cap, lambda u: u.write(ROOT, b"read data"))

        stop = threading.Event()
        errors: list[BaseException] = []

        def commit_stream():
            try:
                round_ = 0
                while not stop.is_set():
                    def fill(update, r=round_):
                        update.write(ROOT, b"round %d" % r)
                        for _ in range(63):
                            update.append_page(ROOT, b"x" * 4096)

                    committer.transact(commit_cap, fill)
                    round_ += 1
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=commit_stream)
        thread.start()
        try:
            for _ in range(200):
                assert reader.snapshot_read(read_cap) == b"read data"
        except MessageDropped:
            pytest.fail("snapshot_read answered busy during a commit")
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not errors, errors[0]
        busy = recorder.metrics.counters.get("net.tcp.busy")
        assert busy is None or busy.value == 0
    finally:
        cluster.stop()


def _read_exact(sock, n):
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        assert chunk, "connection closed early"
        data += chunk
    return data
