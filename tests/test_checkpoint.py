"""Registry checkpoint/restore: the persisted replicated file table."""

import pytest

from repro.capability import CapabilityIssuer
from repro.core.pathname import PagePath
from repro.core.registry import FileRegistry
from repro.core.service import FileService
from repro.testbed import build_cluster, build_hybrid_cluster

ROOT = PagePath.ROOT


def test_checkpoint_and_restore_roundtrip(cluster):
    fs = cluster.fs()
    caps = [fs.create_file(b"f%d" % i) for i in range(4)]
    table_block = fs.checkpoint_registry()

    reborn = FileService(
        "reborn",
        cluster.network,
        FileRegistry(),
        CapabilityIssuer(cluster.service_port),
        cluster.block_port,
        account=1,
    )
    restored = reborn.restore_registry(table_block)
    assert restored == 4
    for i, cap in enumerate(caps):
        # The ORIGINAL capabilities still validate (secrets persisted).
        assert reborn.read_page(reborn.current_version(cap), ROOT) == b"f%d" % i


def test_checkpoint_rewrites_in_place(cluster):
    fs = cluster.fs()
    fs.create_file(b"one")
    table_block = fs.checkpoint_registry()
    fs.create_file(b"two")
    same_block = fs.checkpoint_registry(table_block)
    assert same_block == table_block
    reborn = FileService(
        "reborn",
        cluster.network,
        FileRegistry(),
        CapabilityIssuer(cluster.service_port),
        cluster.block_port,
        account=1,
    )
    assert reborn.restore_registry(table_block) == 2


def test_stale_checkpoint_still_resolves_current(cluster):
    """Entry blocks in a checkpoint go stale as commits happen; resolution
    chases commit references, so a restore from an old table still finds
    the newest state."""
    fs = cluster.fs()
    cap = fs.create_file(b"r0")
    table_block = fs.checkpoint_registry()
    for n in range(1, 4):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"r%d" % n)
        fs.commit(handle.version)
    reborn = FileService(
        "reborn",
        cluster.network,
        FileRegistry(),
        CapabilityIssuer(cluster.service_port),
        cluster.block_port,
        account=1,
    )
    reborn.restore_registry(table_block)
    assert reborn.read_page(reborn.current_version(cap), ROOT) == b"r3"


def test_checkpoint_on_hybrid_lands_on_magnetic():
    hybrid = build_hybrid_cluster(seed=44)
    fs = hybrid.fs()
    fs.create_file(b"x")
    from repro.block.hybrid import OPTICAL_BASE

    table_block = fs.checkpoint_registry()
    assert table_block < OPTICAL_BASE
    # Rewriting the table must be possible (it is on the magnetic side).
    fs.create_file(b"y")
    fs.checkpoint_registry(table_block)
