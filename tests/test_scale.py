"""Scale smoke tests: many clients, many files, long version chains.

Nothing subtle — these exist to catch accidental quadratic behaviour and
resource leaks that small tests never see.
"""

import random

from repro.core.pathname import PagePath
from repro.client.api import FileClient
from repro.sim.sched import Scheduler
from repro.testbed import build_cluster
from repro.tools.check import check_cluster

ROOT = PagePath.ROOT


def test_long_version_chain_stays_responsive():
    cluster = build_cluster(seed=140)
    fs = cluster.fs()
    cap = fs.create_file(b"r0")
    for n in range(1, 120):
        handle = fs.create_version(cap)
        fs.write_page(handle.version, ROOT, b"r%d" % n)
        fs.commit(handle.version)
    # The 120th update is as cheap as the 2nd (entry advancement).
    disk = cluster.pair.disk_a
    before = disk.stats.reads
    handle = fs.create_version(cap)
    fs.write_page(handle.version, ROOT, b"final")
    fs.commit(handle.version)
    assert disk.stats.reads - before < 10
    assert fs.read_page(fs.current_version(cap), ROOT) == b"final"
    # Pruning keeps the tail bounded.
    pruned = cluster.gc().truncate_history(cap, keep=5)
    assert pruned == 116
    swept = cluster.gc().collect().swept
    assert swept >= 100


def test_ten_clients_forty_files_interleaved():
    cluster = build_cluster(servers=2, seed=141)
    rng = random.Random(142)
    clients = [
        FileClient(cluster.network, f"h{i}", cluster.service_port)
        for i in range(10)
    ]
    caps = [clients[0].create_file(b"init") for _ in range(40)]

    def worker(client, rounds):
        for r in range(rounds):
            cap = caps[rng.randrange(len(caps))]
            client.transact(
                cap, lambda u, r=r: u.write(ROOT, b"%s-%d" % (client.node.encode(), r))
            )
            yield

    sched = Scheduler()
    for client in clients:
        sched.spawn(client.node, worker(client, 6))
    sched.run()
    # Every file readable, fsck clean, pair consistent.
    for cap in caps:
        clients[0].read(cap)
    report = check_cluster(cluster)
    assert report.ok, report.errors
    assert cluster.pair.consistent()


def test_wide_file_many_children():
    cluster = build_cluster(seed=143)
    fs = cluster.fs()
    cap = fs.create_file(b"")
    handle = fs.create_version(cap)
    for i in range(500):
        fs.append_page(handle.version, ROOT, b"p%d" % i)
    fs.commit(handle.version)
    current = fs.current_version(cap)
    assert fs.read_page(current, PagePath.of(499)) == b"p499"
    assert len(fs.page_structure(current, ROOT)) == 500
    # A single-page update of the wide file stays cheap.
    disk = cluster.pair.disk_a
    handle = fs.create_version(cap)
    fs.write_page(handle.version, PagePath.of(250), b"mid")
    before_writes = disk.stats.writes
    fs.commit(handle.version)
    assert disk.stats.writes - before_writes < 8
