"""The ``python -m repro`` command-line tour."""

import subprocess
import sys

import pytest


def _run(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_demo_runs_clean():
    result = _run("demo")
    assert result.returncode == 0, result.stderr
    assert "fsck: clean" in result.stdout
    assert "crashed" in result.stdout


def test_fsck_exits_zero_on_clean_system():
    result = _run("fsck")
    assert result.returncode == 0, result.stderr
    assert "fsck: clean" in result.stdout
    assert "0 leaked blocks" in result.stdout


def test_salvage_recovers_files():
    result = _run("salvage")
    assert result.returncode == 0, result.stderr
    assert "recovered 3 files" in result.stdout
    assert "revised" in result.stdout


def test_unknown_subcommand_prints_usage():
    result = _run("no-such-command")
    assert result.returncode == 2
    assert "Subcommands" in result.stdout


@pytest.mark.parametrize(
    "script",
    [
        "quickstart",
        "airline_reservation",
        "bank_branch",
        "source_control",
        "crash_resilience",
        "project_workspace",
        "remote_quickstart",
    ],
)
def test_examples_run_clean(script):
    result = subprocess.run(
        [sys.executable, f"examples/{script}.py"],
        capture_output=True,
        text=True,
        timeout=180,
        cwd="/root/repo",
    )
    assert result.returncode == 0, result.stderr[-2000:]
