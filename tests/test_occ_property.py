"""Property-based serialisability check.

Random concurrent transactions (page reads + blind page writes, all based
on the same current version) are committed in a random order.  Because the
walk records reads as R on children and navigation as S on the root, and
these writes never touch root data or structure, the theory predicts the
outcome exactly:

* transaction k commits iff its read set is disjoint from the union of
  the write sets of the transactions committed before it;
* the final state of every page is the value written by the *last*
  committed transaction that wrote it (blind write/write: later committer
  wins), or the initial value.

Write values are derived from the values the transaction read, so a
validation bug that let a stale read slip through would corrupt the
prediction, not just the abort pattern.
"""

from __future__ import annotations

import hashlib

from hypothesis import given, settings, strategies as st

from repro.errors import CommitConflict
from repro.core.pathname import PagePath
from repro.testbed import build_cluster

N_PAGES = 5

txn_strategy = st.tuples(
    st.sets(st.integers(min_value=0, max_value=N_PAGES - 1), max_size=3),  # reads
    st.sets(st.integers(min_value=0, max_value=N_PAGES - 1), min_size=1, max_size=2),  # writes
)

workload_strategy = st.lists(txn_strategy, min_size=2, max_size=5)


def _value(txn_id: int, read_values: list[bytes]) -> bytes:
    digest = hashlib.sha256(
        b"|".join([str(txn_id).encode()] + read_values)
    ).hexdigest()[:12]
    return digest.encode()


@settings(max_examples=80, deadline=None)
@given(workload=workload_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_committed_history_is_serialisable(workload, seed):
    cluster = build_cluster(seed=seed)
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(N_PAGES):
        fs.append_page(setup.version, PagePath.ROOT, b"init%d" % i)
    fs.commit(setup.version)

    # Run every transaction against its own version (full isolation).
    handles = []
    observed_reads: list[list[bytes]] = []
    for txn_id, (reads, writes) in enumerate(workload):
        handle = fs.create_version(cap)
        seen = [
            fs.read_page(handle.version, PagePath.of(page))
            for page in sorted(reads)
        ]
        value = _value(txn_id, seen)
        for page in sorted(writes):
            fs.write_page(handle.version, PagePath.of(page), value)
        handles.append(handle)
        observed_reads.append(seen)

    # Commit in list order; record outcomes.
    committed: list[int] = []
    for txn_id, handle in enumerate(handles):
        try:
            fs.commit(handle.version)
            committed.append(txn_id)
        except CommitConflict:
            pass

    # Prediction: commit iff reads disjoint from prior committed writes.
    model_state = {i: b"init%d" % i for i in range(N_PAGES)}
    expected_committed = []
    for txn_id, (reads, writes) in enumerate(workload):
        prior_writes = set()
        for earlier in expected_committed:
            prior_writes |= workload[earlier][1]
        if reads & prior_writes:
            continue  # must abort
        expected_committed.append(txn_id)
        seen = [model_state[page] for page in sorted(reads)]
        value = _value(txn_id, seen)
        for page in writes:
            model_state[page] = value

    assert committed == expected_committed

    # Final state equals the serial replay.
    current = fs.current_version(cap)
    for page in range(N_PAGES):
        assert fs.read_page(current, PagePath.of(page)) == model_state[page]


@settings(max_examples=40, deadline=None)
@given(
    workload=workload_strategy,
    order=st.permutations(list(range(5))),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_commit_order_permutation_stays_serialisable(workload, order, seed):
    """Same property under an arbitrary commit order."""
    cluster = build_cluster(seed=seed)
    fs = cluster.fs()
    cap = fs.create_file(b"root")
    setup = fs.create_version(cap)
    for i in range(N_PAGES):
        fs.append_page(setup.version, PagePath.ROOT, b"init%d" % i)
    fs.commit(setup.version)

    handles = []
    for txn_id, (reads, writes) in enumerate(workload):
        handle = fs.create_version(cap)
        seen = [
            fs.read_page(handle.version, PagePath.of(p)) for p in sorted(reads)
        ]
        value = _value(txn_id, seen)
        for page in sorted(writes):
            fs.write_page(handle.version, PagePath.of(page), value)
        handles.append(handle)

    commit_order = [i for i in order if i < len(handles)]
    committed = []
    for txn_id in commit_order:
        try:
            fs.commit(handles[txn_id].version)
            committed.append(txn_id)
        except CommitConflict:
            pass

    model_state = {i: b"init%d" % i for i in range(N_PAGES)}
    expected = []
    for txn_id in commit_order:
        reads, writes = workload[txn_id]
        prior = set()
        for earlier in expected:
            prior |= workload[earlier][1]
        if reads & prior:
            continue
        expected.append(txn_id)
        seen = [model_state[p] for p in sorted(reads)]
        value = _value(txn_id, seen)
        for page in writes:
            model_state[page] = value

    assert committed == expected
    current = fs.current_version(cap)
    for page in range(N_PAGES):
        assert fs.read_page(current, PagePath.of(page)) == model_state[page]
