"""Source control on the version mechanism."""

import pytest

from repro.apps.sccs import SourceControl


@pytest.fixture
def sccs(client):
    return SourceControl(client, chunk=8)


def test_create_and_checkout(sccs):
    cap = sccs.create(b"first text", "sape", "init")
    assert sccs.checkout(cap) == b"first text"


def test_history_metadata(sccs):
    cap = sccs.create(b"v1", "sape", "init")
    sccs.checkin(cap, b"v2 text", "andy", "rework")
    history = sccs.history(cap)
    assert [(r.number, r.author, r.message) for r in history] == [
        (1, "sape", "init"),
        (2, "andy", "rework"),
    ]
    assert history[1].length == 7


def test_old_revisions_stay_readable(sccs):
    cap = sccs.create(b"alpha", "a", "r1")
    sccs.checkin(cap, b"beta", "b", "r2")
    sccs.checkin(cap, b"gamma", "c", "r3")
    assert sccs.checkout(cap, 1) == b"alpha"
    assert sccs.checkout(cap, 2) == b"beta"
    assert sccs.checkout(cap, 3) == b"gamma"
    assert sccs.checkout(cap) == b"gamma"


def test_unknown_revision(sccs):
    cap = sccs.create(b"x", "a", "r1")
    with pytest.raises(KeyError):
        sccs.checkout(cap, 9)


def test_multi_chunk_texts(sccs):
    text = bytes(range(100)) * 3
    cap = sccs.create(text, "a", "big")
    assert sccs.checkout(cap) == text
    longer = text + b"tail"
    sccs.checkin(cap, longer, "a", "grow")
    assert sccs.checkout(cap) == longer
    shorter = text[:50]
    sccs.checkin(cap, shorter, "a", "shrink")
    assert sccs.checkout(cap) == shorter
    assert sccs.checkout(cap, 2) == longer  # history intact


def test_diff_reports_changed_chunks(sccs):
    cap = sccs.create(b"AAAAAAAABBBBBBBB", "a", "r1")
    sccs.checkin(cap, b"AAAAAAAACCCCCCCC", "a", "r2")
    changes = sccs.diff(cap, 1, 2)
    assert changes == [(1, b"BBBBBBBB", b"CCCCCCCC")]


def test_unchanged_chunks_are_shared_on_disk(cluster, client):
    """The differential-file property: a check-in rewriting one chunk
    allocates far fewer blocks than one rewriting everything."""
    sccs = SourceControl(client, chunk=8)
    base = b"A" * 8 + b"B" * 8 + b"C" * 8 + b"D" * 8
    cap = sccs.create(base, "a", "r1")
    allocated_before = len(cluster.fs().store.blocks.recover())
    small_edit = b"A" * 8 + b"B" * 8 + b"X" * 8 + b"D" * 8
    sccs.checkin(cap, small_edit, "a", "one chunk")
    small_growth = len(cluster.fs().store.blocks.recover()) - allocated_before
    full_edit = bytes(reversed(small_edit))
    before_full = len(cluster.fs().store.blocks.recover())
    sccs.checkin(cap, full_edit, "a", "all chunks")
    full_growth = len(cluster.fs().store.blocks.recover()) - before_full
    assert small_growth < full_growth
