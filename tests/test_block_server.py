"""The block server: allocation, protection, locks, test-and-set, recovery."""

import pytest

from repro.errors import (
    BlockLocked,
    DiskFull,
    NoSuchBlock,
    NotBlockOwner,
    ServerCrashed,
)
from repro.block.disk import SimDisk
from repro.block.server import BlockServer, PUBLIC_ACCOUNT


@pytest.fixture
def server():
    return BlockServer("bs", SimDisk(capacity=32, block_size=128))


def test_allocate_write_read(server):
    block = server.allocate_write(1, b"data")
    assert server.read(1, block) == b"data"


def test_allocation_is_dense(server):
    blocks = [server.allocate(1) for _ in range(3)]
    assert blocks == [1, 2, 3]


def test_allocate_with_hint(server):
    assert server.allocate(1, hint=7) == 7
    with pytest.raises(DiskFull):
        server.allocate(1, hint=7)


def test_protection_between_accounts(server):
    block = server.allocate_write(1, b"mine")
    with pytest.raises(NotBlockOwner):
        server.read(2, block)
    with pytest.raises(NotBlockOwner):
        server.write(2, block, b"theirs")
    with pytest.raises(NotBlockOwner):
        server.free(2, block)


def test_public_account_blocks_shared(server):
    block = server.allocate_write(PUBLIC_ACCOUNT, b"shared")
    assert server.read(5, block) == b"shared"


def test_unallocated_block_raises(server):
    with pytest.raises(NoSuchBlock):
        server.read(1, 9)


def test_free_erases_and_releases(server):
    block = server.allocate_write(1, b"x")
    server.free(1, block)
    with pytest.raises(NoSuchBlock):
        server.read(1, block)
    assert server.owner_of(block) is None


def test_test_and_set_success(server):
    block = server.allocate_write(1, b"AAAABBBB")
    result = server.test_and_set(1, block, 4, b"BBBB", b"CCCC")
    assert result.success
    assert server.read(1, block) == b"AAAACCCC"


def test_test_and_set_failure_returns_current(server):
    block = server.allocate_write(1, b"AAAABBBB")
    result = server.test_and_set(1, block, 4, b"XXXX", b"CCCC")
    assert not result.success
    assert result.current == b"BBBB"
    assert server.read(1, block) == b"AAAABBBB"  # untouched


def test_test_and_set_length_mismatch(server):
    block = server.allocate_write(1, b"AAAA")
    with pytest.raises(ValueError):
        server.test_and_set(1, block, 0, b"AA", b"AAA")


def test_test_and_set_out_of_range(server):
    block = server.allocate_write(1, b"AAAA")
    with pytest.raises(ValueError):
        server.test_and_set(1, block, 2, b"AAAA", b"BBBB")


def test_lock_unlock(server):
    block = server.allocate_write(1, b"x")
    assert server.lock(block, locker=0xA)
    assert not server.lock(block, locker=0xB)
    assert server.lock(block, locker=0xA)  # re-entrant
    server.unlock(block, 0xA)
    assert server.lock(block, locker=0xB)


def test_foreign_unlock_raises(server):
    block = server.allocate_write(1, b"x")
    server.lock(block, 0xA)
    with pytest.raises(BlockLocked):
        server.unlock(block, 0xB)


def test_unlock_unheld_is_noop(server):
    block = server.allocate_write(1, b"x")
    server.unlock(block, 0xA)


def test_recover_lists_account_blocks(server):
    mine = [server.allocate_write(1, b"m") for _ in range(3)]
    server.allocate_write(2, b"o")
    assert server.recover(1) == sorted(mine)
    assert len(server.recover(2)) == 1
    assert server.recover(3) == []


def test_crash_blocks_all_commands(server):
    block = server.allocate_write(1, b"x")
    server.crash()
    for call in (
        lambda: server.read(1, block),
        lambda: server.write(1, block, b"y"),
        lambda: server.allocate(1),
        lambda: server.recover(1),
    ):
        with pytest.raises(ServerCrashed):
            call()


def test_restart_clears_locks_keeps_data(server):
    block = server.allocate_write(1, b"x")
    server.lock(block, 0xA)
    server.crash()
    server.restart()
    assert server.read(1, block) == b"x"
    assert server.lock_holder(block) is None


def test_free_releases_lock(server):
    block = server.allocate_write(1, b"x")
    server.lock(block, 0xA)
    server.free(1, block)
    fresh = server.allocate(1, hint=block)
    assert server.lock_holder(fresh) is None


def test_cmd_surface_mirrors_methods(server):
    block = server.cmd_allocate_write(1, b"rpc")
    assert server.cmd_read(1, block) == b"rpc"
    server.cmd_write(1, block, b"rpc2")
    result = server.cmd_test_and_set(1, block, 0, b"rpc2", b"rpc3")
    assert result.success
    assert server.cmd_lock(block, 1)
    server.cmd_unlock(block, 1)
    assert block in server.cmd_recover(1)
    server.cmd_free(1, block)
